package opt

import (
	"math"
	"math/rand"
	"testing"

	"reffil/internal/autograd"
	"reffil/internal/nn"
	"reffil/internal/tensor"
)

func quadParams(vals ...float64) []nn.Param {
	ps := make([]nn.Param, len(vals))
	for i, v := range vals {
		ps[i] = nn.Param{Name: "p", Value: autograd.Param(tensor.FromSlice([]float64{v}, 1))}
	}
	return ps
}

func TestNewSGDValidation(t *testing.T) {
	tests := []struct {
		name        string
		lr, mom, wd float64
		wantErr     bool
	}{
		{"valid", 0.1, 0.9, 1e-4, false},
		{"zero lr", 0, 0, 0, true},
		{"negative lr", -1, 0, 0, true},
		{"momentum 1", 0.1, 1, 0, true},
		{"negative wd", 0.1, 0, -1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewSGD(nil, tt.lr, tt.mom, tt.wd)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSGDMinimizesQuadratic(t *testing.T) {
	// Minimize f(x) = (x-3)² from x=0.
	ps := quadParams(0)
	x := ps[0].Value
	sgd, err := NewSGD(ps, 0.1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sgd.ZeroGrad()
		loss := autograd.Sum(autograd.Square(autograd.AddScalar(x, -3)))
		if err := autograd.Backward(loss); err != nil {
			t.Fatal(err)
		}
		sgd.Step()
	}
	if got := x.T.At(0); math.Abs(got-3) > 1e-3 {
		t.Fatalf("converged to %v, want 3", got)
	}
}

func TestSGDMomentumAcceleratesConvergence(t *testing.T) {
	run := func(momentum float64) float64 {
		ps := quadParams(0)
		x := ps[0].Value
		sgd, err := NewSGD(ps, 0.02, momentum, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			sgd.ZeroGrad()
			loss := autograd.Sum(autograd.Square(autograd.AddScalar(x, -3)))
			if err := autograd.Backward(loss); err != nil {
				t.Fatal(err)
			}
			sgd.Step()
		}
		return math.Abs(x.T.At(0) - 3)
	}
	plain := run(0)
	withMomentum := run(0.9)
	if withMomentum >= plain {
		t.Fatalf("momentum should converge faster on a quadratic: %v vs %v", withMomentum, plain)
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	// With zero data gradient, weight decay alone must shrink the weight.
	ps := quadParams(2)
	x := ps[0].Value
	sgd, err := NewSGD(ps, 0.1, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	x.EnsureGrad() // zero gradient present
	before := x.T.At(0)
	sgd.Step()
	if got := x.T.At(0); got >= before {
		t.Fatalf("weight decay did not shrink weight: %v -> %v", before, got)
	}
}

func TestSGDSkipsNilGrad(t *testing.T) {
	ps := quadParams(1)
	sgd, err := NewSGD(ps, 0.1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sgd.Step() // no gradient accumulated
	if got := ps[0].Value.T.At(0); got != 1 {
		t.Fatalf("param changed without gradient: %v", got)
	}
}

func TestClipGradNorm(t *testing.T) {
	ps := quadParams(0, 0)
	ps[0].Value.EnsureGrad().Fill(3)
	ps[1].Value.EnsureGrad().Fill(4)
	norm := ClipGradNorm(ps, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	total := 0.0
	for _, p := range ps {
		n := p.Value.Grad.L2Norm()
		total += n * n
	}
	if math.Abs(math.Sqrt(total)-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v, want 1", math.Sqrt(total))
	}
}

func TestClipGradNormNoopBelowThreshold(t *testing.T) {
	ps := quadParams(0)
	ps[0].Value.EnsureGrad().Fill(0.5)
	ClipGradNorm(ps, 10)
	if got := ps[0].Value.Grad.At(0); got != 0.5 {
		t.Fatalf("clip modified gradient below threshold: %v", got)
	}
}

func TestStepDecaySchedule(t *testing.T) {
	sched := StepDecay(1.0, 10, 0.5)
	if got := sched(0); got != 1.0 {
		t.Fatalf("sched(0) = %v", got)
	}
	if got := sched(10); got != 0.5 {
		t.Fatalf("sched(10) = %v", got)
	}
	if got := sched(25); got != 0.25 {
		t.Fatalf("sched(25) = %v", got)
	}
}

func TestCosineDecaySchedule(t *testing.T) {
	sched := CosineDecay(1.0, 0.1, 100)
	if got := sched(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("sched(0) = %v, want 1", got)
	}
	if got := sched(100); got != 0.1 {
		t.Fatalf("sched(100) = %v, want 0.1", got)
	}
	mid := sched(50)
	if mid <= 0.1 || mid >= 1 {
		t.Fatalf("sched(50) = %v, want strictly between floor and base", mid)
	}
	// Monotone non-increasing.
	prev := math.Inf(1)
	for s := 0; s <= 100; s += 5 {
		v := sched(s)
		if v > prev+1e-12 {
			t.Fatalf("cosine schedule increased at step %d", s)
		}
		prev = v
	}
}

func TestSGDTrainsTinyNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := nn.NewLinear("l", rng, 2, 2, true)
	sgd, err := NewSGD(l.Params(), 0.5, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := autograd.Constant(tensor.FromSlice([]float64{1, 0, 0, 1, 1, 1, 0, 0}, 4, 2))
	labels := []int{0, 1, 1, 0}
	var first, last float64
	for i := 0; i < 60; i++ {
		sgd.ZeroGrad()
		loss, err := autograd.SoftmaxCrossEntropy(l.Forward(x), labels)
		if err != nil {
			t.Fatal(err)
		}
		if err := autograd.Backward(loss); err != nil {
			t.Fatal(err)
		}
		sgd.Step()
		if i == 0 {
			first = loss.T.Item()
		}
		last = loss.T.Item()
	}
	if last >= first {
		t.Fatalf("training loss did not decrease: %v -> %v", first, last)
	}
}
