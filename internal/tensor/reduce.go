package tensor

import (
	"fmt"
	"math"
)

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// axisSpans decomposes a shape around an axis into (outer, dim, inner)
// products, so element (o, j, i) lives at offset (o*dim+j)*inner+i.
func axisSpans(shape []int, axis int) (outer, dim, inner int) {
	outer, inner = 1, 1
	for i := 0; i < axis; i++ {
		outer *= shape[i]
	}
	dim = shape[axis]
	for i := axis + 1; i < len(shape); i++ {
		inner *= shape[i]
	}
	return outer, dim, inner
}

func reducedShape(shape []int, axis int, keepDim bool) []int {
	out := make([]int, 0, len(shape))
	for i, d := range shape {
		if i == axis {
			if keepDim {
				out = append(out, 1)
			}
			continue
		}
		out = append(out, d)
	}
	return out
}

// SumAxis sums along the given axis. With keepDim the reduced axis is
// retained with size 1.
func SumAxis(t *Tensor, axis int, keepDim bool) *Tensor {
	if axis < 0 || axis >= t.NDim() {
		panic(fmt.Sprintf("tensor: SumAxis axis %d out of range for %v", axis, t.shape))
	}
	outer, dim, inner := axisSpans(t.shape, axis)
	out := New(reducedShape(t.shape, axis, keepDim)...)
	for o := 0; o < outer; o++ {
		for j := 0; j < dim; j++ {
			src := t.data[(o*dim+j)*inner : (o*dim+j+1)*inner]
			dst := out.data[o*inner : (o+1)*inner]
			for i, v := range src {
				dst[i] += v
			}
		}
	}
	return out
}

// MeanAxis averages along the given axis.
func MeanAxis(t *Tensor, axis int, keepDim bool) *Tensor {
	out := SumAxis(t, axis, keepDim)
	out.ScaleInPlace(1 / float64(t.shape[axis]))
	return out
}

// MaxAxis returns per-slice maxima along axis and the winning indices.
func MaxAxis(t *Tensor, axis int, keepDim bool) (*Tensor, []int) {
	if axis < 0 || axis >= t.NDim() {
		panic(fmt.Sprintf("tensor: MaxAxis axis %d out of range for %v", axis, t.shape))
	}
	outer, dim, inner := axisSpans(t.shape, axis)
	out := New(reducedShape(t.shape, axis, keepDim)...)
	idx := make([]int, outer*inner)
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			best := math.Inf(-1)
			bestJ := 0
			for j := 0; j < dim; j++ {
				v := t.data[(o*dim+j)*inner+i]
				if v > best {
					best = v
					bestJ = j
				}
			}
			out.data[o*inner+i] = best
			idx[o*inner+i] = bestJ
		}
	}
	return out, idx
}

// ArgmaxRows returns, for a 2-D tensor, the column index of the maximum in
// each row.
func ArgmaxRows(t *Tensor) []int {
	if t.NDim() != 2 {
		panic(fmt.Sprintf("tensor: ArgmaxRows needs 2-D, got %v", t.shape))
	}
	_, idx := MaxAxis(t, 1, false)
	return idx
}

// Softmax returns softmax along the last axis, computed stably by
// subtracting the per-row maximum.
func Softmax(t *Tensor) *Tensor {
	if t.NDim() < 1 {
		panic("tensor: Softmax needs at least 1-D")
	}
	n := t.shape[t.NDim()-1]
	rows := len(t.data) / n
	out := New(t.shape...)
	for r := 0; r < rows; r++ {
		src := t.data[r*n : (r+1)*n]
		dst := out.data[r*n : (r+1)*n]
		maxV := math.Inf(-1)
		for _, v := range src {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for i, v := range src {
			e := math.Exp(v - maxV)
			dst[i] = e
			sum += e
		}
		inv := 1 / sum
		for i := range dst {
			dst[i] *= inv
		}
	}
	return out
}

// LogSumExpRows returns, for a 2-D tensor, the log-sum-exp of each row.
func LogSumExpRows(t *Tensor) *Tensor {
	if t.NDim() != 2 {
		panic(fmt.Sprintf("tensor: LogSumExpRows needs 2-D, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(m)
	for r := 0; r < m; r++ {
		src := t.data[r*n : (r+1)*n]
		maxV := math.Inf(-1)
		for _, v := range src {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for _, v := range src {
			sum += math.Exp(v - maxV)
		}
		out.data[r] = maxV + math.Log(sum)
	}
	return out
}
