package tensor

import "fmt"

// Reshape returns a tensor sharing t's data with a new shape of identical
// total size. One dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic(fmt.Sprintf("tensor: Reshape with multiple -1 dims %v", shape))
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dim for Reshape %v -> %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / known
		known *= shape[infer]
	}
	if known != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape %v -> %v changes size", t.shape, shape))
	}
	return &Tensor{shape: shape, data: t.data}
}

// Flatten returns a 1-D view of t's data.
func (t *Tensor) Flatten() *Tensor { return t.Reshape(len(t.data)) }

// Transpose returns the transpose of a 2-D tensor.
func Transpose(t *Tensor) *Tensor {
	if t.NDim() != 2 {
		panic(fmt.Sprintf("tensor: Transpose needs 2-D, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j*m+i] = v
		}
	}
	return out
}

// Permute returns a copy of t with axes reordered by perm.
func Permute(t *Tensor, perm ...int) *Tensor {
	if len(perm) != len(t.shape) {
		panic(fmt.Sprintf("tensor: Permute arity mismatch perm=%v shape=%v", perm, t.shape))
	}
	seen := make([]bool, len(perm))
	outShape := make([]int, len(perm))
	for i, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			panic(fmt.Sprintf("tensor: invalid permutation %v", perm))
		}
		seen[p] = true
		outShape[i] = t.shape[p]
	}
	out := New(outShape...)
	inStrides := t.Strides()
	// Iterate the output in order, mapping each output index to the input.
	idx := make([]int, len(outShape))
	inOff := 0
	permStrides := make([]int, len(perm))
	for i, p := range perm {
		permStrides[i] = inStrides[p]
	}
	for i := range out.data {
		out.data[i] = t.data[inOff]
		for ax := len(outShape) - 1; ax >= 0; ax-- {
			idx[ax]++
			inOff += permStrides[ax]
			if idx[ax] < outShape[ax] {
				break
			}
			idx[ax] = 0
			inOff -= permStrides[ax] * outShape[ax]
		}
	}
	return out
}

// Concat concatenates tensors along the given axis. All other dimensions
// must match.
func Concat(axis int, ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of no tensors")
	}
	first := ts[0]
	if axis < 0 || axis >= first.NDim() {
		panic(fmt.Sprintf("tensor: Concat axis %d out of range for shape %v", axis, first.shape))
	}
	outShape := first.Shape()
	for _, t := range ts[1:] {
		if t.NDim() != first.NDim() {
			panic(fmt.Sprintf("tensor: Concat rank mismatch %v vs %v", first.shape, t.shape))
		}
		for i := range t.shape {
			if i == axis {
				continue
			}
			if t.shape[i] != first.shape[i] {
				panic(fmt.Sprintf("tensor: Concat shape mismatch %v vs %v on axis %d", first.shape, t.shape, i))
			}
		}
		outShape[axis] += t.shape[axis]
	}
	out := New(outShape...)
	// outer = product of dims before axis, inner = product after.
	outer, inner := 1, 1
	for i := 0; i < axis; i++ {
		outer *= first.shape[i]
	}
	for i := axis + 1; i < first.NDim(); i++ {
		inner *= first.shape[i]
	}
	outRow := outShape[axis] * inner
	col := 0
	for _, t := range ts {
		rowLen := t.shape[axis] * inner
		for o := 0; o < outer; o++ {
			copy(out.data[o*outRow+col:o*outRow+col+rowLen], t.data[o*rowLen:(o+1)*rowLen])
		}
		col += rowLen
	}
	return out
}

// Narrow returns a copy of the slice of t along axis from start (inclusive)
// to end (exclusive).
func Narrow(t *Tensor, axis, start, end int) *Tensor {
	if axis < 0 || axis >= t.NDim() {
		panic(fmt.Sprintf("tensor: Narrow axis %d out of range for shape %v", axis, t.shape))
	}
	if start < 0 || end > t.shape[axis] || start > end {
		panic(fmt.Sprintf("tensor: Narrow range [%d,%d) out of bounds for axis %d of %v", start, end, axis, t.shape))
	}
	outShape := t.Shape()
	outShape[axis] = end - start
	out := New(outShape...)
	outer, inner := 1, 1
	for i := 0; i < axis; i++ {
		outer *= t.shape[i]
	}
	for i := axis + 1; i < t.NDim(); i++ {
		inner *= t.shape[i]
	}
	inRow := t.shape[axis] * inner
	outRow := (end - start) * inner
	for o := 0; o < outer; o++ {
		copy(out.data[o*outRow:(o+1)*outRow], t.data[o*inRow+start*inner:o*inRow+end*inner])
	}
	return out
}

// NarrowAddInPlace adds src into the slice of t along axis starting at
// start. It is the scatter counterpart of Narrow, used by gradients.
func NarrowAddInPlace(t *Tensor, axis, start int, src *Tensor) {
	end := start + src.shape[axis]
	if end > t.shape[axis] {
		panic(fmt.Sprintf("tensor: NarrowAddInPlace overflow axis %d: %d+%d > %d", axis, start, src.shape[axis], t.shape[axis]))
	}
	outer, inner := 1, 1
	for i := 0; i < axis; i++ {
		outer *= t.shape[i]
	}
	for i := axis + 1; i < t.NDim(); i++ {
		inner *= t.shape[i]
	}
	inRow := t.shape[axis] * inner
	srcRow := src.shape[axis] * inner
	for o := 0; o < outer; o++ {
		dst := t.data[o*inRow+start*inner : o*inRow+end*inner]
		s := src.data[o*srcRow : (o+1)*srcRow]
		for i, v := range s {
			dst[i] += v
		}
	}
}

// Stack stacks equally shaped tensors along a new leading axis.
func Stack(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Stack of no tensors")
	}
	shape := append([]int{len(ts)}, ts[0].shape...)
	out := New(shape...)
	n := ts[0].Size()
	for i, t := range ts {
		if !t.SameShape(ts[0]) {
			panic(fmt.Sprintf("tensor: Stack shape mismatch %v vs %v", ts[0].shape, t.shape))
		}
		copy(out.data[i*n:(i+1)*n], t.data)
	}
	return out
}

// Row returns a copy of row i of a 2-D tensor as a 1-D tensor.
func Row(t *Tensor, i int) *Tensor {
	if t.NDim() != 2 {
		panic(fmt.Sprintf("tensor: Row needs 2-D, got %v", t.shape))
	}
	n := t.shape[1]
	out := New(n)
	copy(out.data, t.data[i*n:(i+1)*n])
	return out
}
