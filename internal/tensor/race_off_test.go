//go:build !race

package tensor

// raceEnabled reports whether the race detector instruments this build.
// The AllocsPerRun gate is calibrated for uninstrumented builds — the race
// runtime adds its own per-call allocations.
const raceEnabled = false
