package tensor

import (
	"math"
	"math/rand"
)

// RandN returns a tensor with elements drawn from N(0, std²).
func RandN(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * std
	}
	return t
}

// RandUniform returns a tensor with elements drawn uniformly from [lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// KaimingConv returns a He-initialized convolution weight of shape
// (outC, inC, kh, kw), suited to ReLU networks.
func KaimingConv(rng *rand.Rand, outC, inC, kh, kw int) *Tensor {
	fanIn := inC * kh * kw
	std := math.Sqrt(2 / float64(fanIn))
	return RandN(rng, std, outC, inC, kh, kw)
}

// KaimingLinear returns a He-initialized linear weight of shape (in, out).
func KaimingLinear(rng *rand.Rand, in, out int) *Tensor {
	std := math.Sqrt(2 / float64(in))
	return RandN(rng, std, in, out)
}

// XavierLinear returns a Glorot-initialized linear weight of shape (in, out),
// suited to attention projections and tanh/sigmoid activations.
func XavierLinear(rng *rand.Rand, in, out int) *Tensor {
	limit := math.Sqrt(6 / float64(in+out))
	return RandUniform(rng, -limit, limit, in, out)
}
