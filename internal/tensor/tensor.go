// Package tensor implements a dense, row-major, float64 n-dimensional array
// with the operations needed to train the neural networks in this repository:
// broadcast arithmetic, matrix multiplication, im2col-based convolution
// kernels, reductions, and shape manipulation.
//
// Tensors are always contiguous in row-major (C) order. Operations return
// freshly allocated tensors unless the method name says otherwise (e.g.
// AddInPlace). Shape mismatches are programming errors, not runtime
// conditions, so kernels panic with a descriptive message rather than
// returning errors; all exported entry points in higher-level packages
// validate their inputs before reaching these kernels.
package tensor

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Tensor is a dense row-major float64 array.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. A tensor with no
// dimensions is a scalar holding one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly, not copied; the caller must not alias it afterwards.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Scalar returns a 0-dimensional tensor holding v.
func Scalar(v float64) *Tensor {
	return &Tensor{shape: nil, data: []float64{v}}
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NDim returns the number of axes.
func (t *Tensor) NDim() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: append([]int(nil), t.shape...), data: d}
}

// CopyFrom copies src's data into t. Shapes must match in total size.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set assigns v to the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong arity for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Strides returns the row-major strides of the tensor's shape.
func (t *Tensor) Strides() []int {
	s := make([]int, len(t.shape))
	acc := 1
	for i := len(t.shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= t.shape[i]
	}
	return s
}

// Item returns the single element of a scalar or one-element tensor.
func (t *Tensor) Item() float64 {
	if len(t.data) != 1 {
		panic(fmt.Sprintf("tensor: Item on tensor with %d elements", len(t.data)))
	}
	return t.data[0]
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// String renders small tensors fully and large tensors as a summary.
func (t *Tensor) String() string {
	var b strings.Builder
	b.WriteString("Tensor(")
	b.WriteString(shapeString(t.shape))
	if len(t.data) <= 32 {
		b.WriteString(", [")
		for i, v := range t.data {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.FormatFloat(v, 'g', 6, 64))
		}
		b.WriteString("]")
	} else {
		fmt.Fprintf(&b, ", %d elems", len(t.data))
	}
	b.WriteString(")")
	return b.String()
}

func shapeString(shape []int) string {
	parts := make([]string, len(shape))
	for i, d := range shape {
		parts[i] = strconv.Itoa(d)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of all elements.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// EqualBits reports whether t and o hold bitwise-identical data: element
// counts equal and every float64 identical at the bit level, so 0 and -0
// differ and NaNs compare by payload. It is the equality the delta-wire
// codecs and FedAvg's unanimity short-circuit rely on — "equal" must never
// merge values that are not literally the same bits.
func (t *Tensor) EqualBits(o *Tensor) bool {
	if len(t.data) != len(o.data) {
		return false
	}
	for i := range t.data {
		if math.Float64bits(t.data[i]) != math.Float64bits(o.data[i]) {
			return false
		}
	}
	return true
}

// AllClose reports whether every element of t is within tol of the matching
// element of o. Shapes must match exactly.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.data {
		if math.Abs(t.data[i]-o.data[i]) > tol {
			return false
		}
	}
	return true
}
