package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// The tests in this file pin the repo's kernel determinism contract: the
// cache-blocked kernels (and the parallel MatVec) must be bit-for-bit
// identical to the serial, unblocked reference loops at any worker count —
// tiling the j/output axis reorders which independent elements are computed
// when, never how any one element accumulates over the shared dimension p.
// Shapes deliberately include widths below blockJ (the unblocked fast
// path), exact multiples, and odd tile remainders.

// randOperand draws a (rows, cols) matrix with exact zeros sprinkled in so
// the kernels' av == 0 skip path is exercised by every comparison.
func randOperand(rng *rand.Rand, rows, cols int) *Tensor {
	t := RandN(rng, 1, rows, cols)
	d := t.Data()
	for i := 0; i < len(d); i += 7 {
		d[i] = 0
	}
	return t
}

// requireBitIdentical fails unless got and want hold exactly the same bit
// patterns ("==" would conflate -0.0 with +0.0 and miss NaN payloads).
func requireBitIdentical(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	g, w := got.Data(), want.Data()
	if len(g) != len(w) {
		t.Fatalf("%s: size mismatch: got %d elements, want %d", name, len(g), len(w))
	}
	for i := range g {
		if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
			t.Fatalf("%s: element %d differs bitwise: got %v (%#x), want %v (%#x)",
				name, i, g[i], math.Float64bits(g[i]), w[i], math.Float64bits(w[i]))
		}
	}
}

// serialAndParallel runs f once with helper fan-out disabled (GOMAXPROCS=1
// is the Workers=1 configuration: internal/parallel caps each For call at
// the live GOMAXPROCS) and once at the machine's full width, and hands both
// results to check.
func serialAndParallel(t *testing.T, f func() *Tensor, check func(name string, got *Tensor)) {
	t.Helper()
	prev := runtime.GOMAXPROCS(1)
	serial := f()
	runtime.GOMAXPROCS(prev)
	check("workers=1", serial)
	check("workers=max", f())
}

// kernelShapes cover n < blockJ (unblocked path), n == blockJ, one element
// over, an odd remainder, an exact two-tile width, and a ragged third tile.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 5, 7},
	{17, 33, blockJ},
	{4, 9, blockJ + 1},
	{5, 21, blockJ + 37},
	{2, 16, 2 * blockJ},
	{7, 11, 2*blockJ + 53},
}

func TestMatMulBlockedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, s := range kernelShapes {
		a := randOperand(rng, s.m, s.k)
		b := randOperand(rng, s.k, s.n)
		want := New(s.m, s.n)
		matmulRows(want.data, a.data, b.data, 0, s.m, s.k, s.n)
		serialAndParallel(t, func() *Tensor { return MatMul(a, b) }, func(name string, got *Tensor) {
			requireBitIdentical(t, name, got, want)
		})
	}
}

func TestMatMulT1BlockedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, s := range kernelShapes {
		a := randOperand(rng, s.k, s.m)
		b := randOperand(rng, s.k, s.n)
		want := New(s.m, s.n)
		for p := 0; p < s.k; p++ {
			ap := a.data[p*s.m : (p+1)*s.m]
			bp := b.data[p*s.n : (p+1)*s.n]
			for i := 0; i < s.m; i++ {
				av := ap[i]
				if av == 0 {
					continue
				}
				ci := want.data[i*s.n : (i+1)*s.n]
				for j := range bp {
					ci[j] += av * bp[j]
				}
			}
		}
		serialAndParallel(t, func() *Tensor { return MatMulT1(a, b) }, func(name string, got *Tensor) {
			requireBitIdentical(t, name, got, want)
		})
	}
}

func TestMatMulT2BlockedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, s := range kernelShapes {
		a := randOperand(rng, s.m, s.k)
		b := randOperand(rng, s.n, s.k)
		want := New(s.m, s.n)
		for i := 0; i < s.m; i++ {
			ai := a.data[i*s.k : (i+1)*s.k]
			for j := 0; j < s.n; j++ {
				bj := b.data[j*s.k : (j+1)*s.k]
				sum := 0.0
				for p := range ai {
					sum += ai[p] * bj[p]
				}
				want.data[i*s.n+j] = sum
			}
		}
		serialAndParallel(t, func() *Tensor { return MatMulT2(a, b) }, func(name string, got *Tensor) {
			requireBitIdentical(t, name, got, want)
		})
	}
}

func TestBatchMatMulBlockedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, s := range kernelShapes {
		const bs = 3
		a := randOperand(rng, bs*s.m, s.k).Reshape(bs, s.m, s.k)
		b := randOperand(rng, bs*s.k, s.n).Reshape(bs, s.k, s.n)
		want := New(bs, s.m, s.n)
		for i := 0; i < bs; i++ {
			matmulRows(want.data[i*s.m*s.n:(i+1)*s.m*s.n], a.data[i*s.m*s.k:(i+1)*s.m*s.k], b.data[i*s.k*s.n:(i+1)*s.k*s.n], 0, s.m, s.k, s.n)
		}
		serialAndParallel(t, func() *Tensor { return BatchMatMul(a, b) }, func(name string, got *Tensor) {
			requireBitIdentical(t, name, got, want)
		})
	}
}

func TestMatVecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, s := range kernelShapes {
		a := randOperand(rng, s.m, s.k)
		v := randOperand(rng, 1, s.k).Reshape(s.k)
		want := New(s.m)
		for i := 0; i < s.m; i++ {
			ai := a.data[i*s.k : (i+1)*s.k]
			sum := 0.0
			for p := range ai {
				sum += ai[p] * v.data[p]
			}
			want.data[i] = sum
		}
		serialAndParallel(t, func() *Tensor { return MatVec(a, v) }, func(name string, got *Tensor) {
			requireBitIdentical(t, name, got, want)
		})
	}
}

// TestMatMulSteadyStateAllocs pins the zero-scratch steady state of the
// blocked MatMul: once matmulPanels is warm, a call allocates only the
// output tensor and the two closure headers internal/parallel fan-out
// needs — never the k×n packing panel (a fresh copy of B per call before
// this PR). GOMAXPROCS is pinned to 1 so helper-goroutine bookkeeping
// doesn't blur the count.
func TestMatMulSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are calibrated for uninstrumented builds")
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(46))
	const m, k, n = 16, 32, 2*blockJ + 5
	a := randOperand(rng, m, k)
	b := randOperand(rng, k, n)
	MatMul(a, b) // warm the panel pool
	// Output tensor (struct, data slice, shape slice) + the two parallel.For
	// closures. The panel (k*n floats — the dominant pre-pool cost) must not
	// appear.
	const maxAllocs = 6
	if allocs := testing.AllocsPerRun(20, func() { MatMul(a, b) }); allocs > maxAllocs {
		t.Errorf("blocked MatMul steady state: %v allocs/op, want <= %d (panel scratch must come from the pool)", allocs, maxAllocs)
	}
}
