package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	x := New(2, 3)
	if got := x.Size(); got != 6 {
		t.Fatalf("Size() = %d, want 6", got)
	}
	if got := x.NDim(); got != 2 {
		t.Fatalf("NDim() = %d, want 2", got)
	}
	x.Set(5, 1, 2)
	if got := x.At(1, 2); got != 5 {
		t.Fatalf("At(1,2) = %v, want 5", got)
	}
	if got := x.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if got := s.Item(); got != 3.5 {
		t.Fatalf("Item() = %v, want 3.5", got)
	}
	if got := s.NDim(); got != 0 {
		t.Fatalf("NDim() = %d, want 0", got)
	}
}

func TestFromSliceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length should panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Set(99, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestBroadcastShapes(t *testing.T) {
	tests := []struct {
		name    string
		a, b    []int
		want    []int
		wantErr bool
	}{
		{"same", []int{2, 3}, []int{2, 3}, []int{2, 3}, false},
		{"scalar", []int{2, 3}, nil, []int{2, 3}, false},
		{"row", []int{2, 3}, []int{3}, []int{2, 3}, false},
		{"col", []int{2, 1}, []int{2, 3}, []int{2, 3}, false},
		{"both expand", []int{2, 1, 4}, []int{1, 3, 1}, []int{2, 3, 4}, false},
		{"mismatch", []int{2, 3}, []int{4}, nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := BroadcastShapes(tt.a, tt.b)
			if (err != nil) != tt.wantErr {
				t.Fatalf("BroadcastShapes(%v,%v) err = %v, wantErr %v", tt.a, tt.b, err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("got %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestAddBroadcastRow(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	got := Add(a, b)
	want := FromSlice([]float64{11, 22, 33, 14, 25, 36}, 2, 3)
	if !got.AllClose(want, 0) {
		t.Fatalf("Add broadcast = %v, want %v", got, want)
	}
}

func TestMulBroadcastColumn(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{2, 10}, 2, 1)
	got := Mul(a, b)
	want := FromSlice([]float64{2, 4, 6, 40, 50, 60}, 2, 3)
	if !got.AllClose(want, 0) {
		t.Fatalf("Mul broadcast = %v, want %v", got, want)
	}
}

func TestSubDiv(t *testing.T) {
	a := FromSlice([]float64{4, 9}, 2)
	b := FromSlice([]float64{2, 3}, 2)
	if got := Sub(a, b); !got.AllClose(FromSlice([]float64{2, 6}, 2), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Div(a, b); !got.AllClose(FromSlice([]float64{2, 3}, 2), 0) {
		t.Fatalf("Div = %v", got)
	}
}

func TestReduceToInvertsBroadcast(t *testing.T) {
	// Broadcasting b (3,) across (2,3) then reducing back must equal
	// summing the broadcast contributions: each element counted twice.
	g := Ones(2, 3)
	got := ReduceTo(g, []int{3})
	want := FromSlice([]float64{2, 2, 2}, 3)
	if !got.AllClose(want, 0) {
		t.Fatalf("ReduceTo = %v, want %v", got, want)
	}
	// Reducing to (2,1) sums along columns.
	got2 := ReduceTo(FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3), []int{2, 1})
	want2 := FromSlice([]float64{6, 15}, 2, 1)
	if !got2.AllClose(want2, 0) {
		t.Fatalf("ReduceTo(2,1) = %v, want %v", got2, want2)
	}
}

func TestReduceToSameShapeIsCopy(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := ReduceTo(x, []int{2})
	y.Set(9, 0)
	if x.At(0) != 1 {
		t.Fatal("ReduceTo same-shape must return a copy")
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !got.AllClose(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulTransposedVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(rng, 1, 4, 5)
	b := RandN(rng, 1, 5, 3)
	want := MatMul(a, b)
	gotT1 := MatMulT1(Transpose(a), b)
	if !gotT1.AllClose(want, 1e-12) {
		t.Fatal("MatMulT1 disagrees with MatMul")
	}
	gotT2 := MatMulT2(a, Transpose(b))
	if !gotT2.AllClose(want, 1e-12) {
		t.Fatal("MatMulT2 disagrees with MatMul")
	}
}

func TestBatchMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandN(rng, 1, 3, 2, 4)
	b := RandN(rng, 1, 3, 4, 5)
	got := BatchMatMul(a, b)
	for i := 0; i < 3; i++ {
		ai := Narrow(a, 0, i, i+1).Reshape(2, 4)
		bi := Narrow(b, 0, i, i+1).Reshape(4, 5)
		want := MatMul(ai, bi)
		gi := Narrow(got, 0, i, i+1).Reshape(2, 5)
		if !gi.AllClose(want, 1e-12) {
			t.Fatalf("batch %d disagrees with per-slice MatMul", i)
		}
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float64{5, 6}, 2)
	got := MatVec(a, v)
	want := FromSlice([]float64{17, 39}, 2)
	if !got.AllClose(want, 1e-12) {
		t.Fatalf("MatVec = %v, want %v", got, want)
	}
}

func TestReshapeInference(t *testing.T) {
	x := New(2, 3, 4)
	y := x.Reshape(4, -1)
	if y.Dim(1) != 6 {
		t.Fatalf("inferred dim = %d, want 6", y.Dim(1))
	}
	// Reshape shares data.
	y.Data()[0] = 7
	if x.Data()[0] != 7 {
		t.Fatal("Reshape must share storage")
	}
}

func TestTranspose(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got := Transpose(x)
	want := FromSlice([]float64{1, 4, 2, 5, 3, 6}, 3, 2)
	if !got.AllClose(want, 0) {
		t.Fatalf("Transpose = %v, want %v", got, want)
	}
}

func TestPermute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := RandN(rng, 1, 2, 3, 4)
	y := Permute(x, 2, 0, 1)
	if y.Dim(0) != 4 || y.Dim(1) != 2 || y.Dim(2) != 3 {
		t.Fatalf("Permute shape = %v", y.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				if y.At(k, i, j) != x.At(i, j, k) {
					t.Fatalf("Permute element (%d,%d,%d) mismatch", i, j, k)
				}
			}
		}
	}
	// Permuting twice with inverse restores the original.
	z := Permute(y, 1, 2, 0)
	if !z.AllClose(x, 0) {
		t.Fatal("inverse permutation must restore original")
	}
}

func TestConcatAndNarrowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for axis := 0; axis < 3; axis++ {
		a := RandN(rng, 1, 2, 3, 4)
		b := RandN(rng, 1, 2, 3, 4)
		c := Concat(axis, a, b)
		gotA := Narrow(c, axis, 0, a.Dim(axis))
		gotB := Narrow(c, axis, a.Dim(axis), c.Dim(axis))
		if !gotA.AllClose(a, 0) || !gotB.AllClose(b, 0) {
			t.Fatalf("Concat/Narrow round trip failed on axis %d", axis)
		}
	}
}

func TestNarrowAddInPlace(t *testing.T) {
	dst := New(2, 4)
	src := Ones(2, 2)
	NarrowAddInPlace(dst, 1, 1, src)
	want := FromSlice([]float64{0, 1, 1, 0, 0, 1, 1, 0}, 2, 4)
	if !dst.AllClose(want, 0) {
		t.Fatalf("NarrowAddInPlace = %v, want %v", dst, want)
	}
}

func TestStack(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 4}, 2)
	got := Stack(a, b)
	want := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if !got.AllClose(want, 0) {
		t.Fatalf("Stack = %v, want %v", got, want)
	}
}

func TestSumMeanAxis(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := SumAxis(x, 0, false); !got.AllClose(FromSlice([]float64{5, 7, 9}, 3), 0) {
		t.Fatalf("SumAxis 0 = %v", got)
	}
	if got := SumAxis(x, 1, false); !got.AllClose(FromSlice([]float64{6, 15}, 2), 0) {
		t.Fatalf("SumAxis 1 = %v", got)
	}
	if got := MeanAxis(x, 1, true); !got.AllClose(FromSlice([]float64{2, 5}, 2, 1), 1e-12) {
		t.Fatalf("MeanAxis keepdim = %v", got)
	}
}

func TestMaxAxisAndArgmax(t *testing.T) {
	x := FromSlice([]float64{1, 9, 3, 7, 2, 5}, 2, 3)
	vals, idx := MaxAxis(x, 1, false)
	if !vals.AllClose(FromSlice([]float64{9, 7}, 2), 0) {
		t.Fatalf("MaxAxis vals = %v", vals)
	}
	if idx[0] != 1 || idx[1] != 0 {
		t.Fatalf("MaxAxis idx = %v", idx)
	}
	am := ArgmaxRows(x)
	if am[0] != 1 || am[1] != 0 {
		t.Fatalf("ArgmaxRows = %v", am)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := RandN(rng, 3, 4, 7)
	s := Softmax(x)
	for r := 0; r < 4; r++ {
		sum := 0.0
		for c := 0; c < 7; c++ {
			v := s.At(r, c)
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("softmax row %d sums to %v", r, sum)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	x := FromSlice([]float64{1000, 1001}, 1, 2)
	s := Softmax(x)
	if s.HasNaN() {
		t.Fatal("softmax of large logits must not produce NaN")
	}
	if math.Abs(s.At(0, 0)+s.At(0, 1)-1) > 1e-12 {
		t.Fatal("softmax of large logits must sum to 1")
	}
}

func TestLogSumExpMatchesNaive(t *testing.T) {
	x := FromSlice([]float64{0.5, -1, 2}, 1, 3)
	got := LogSumExpRows(x).At(0)
	want := math.Log(math.Exp(0.5) + math.Exp(-1) + math.Exp(2))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogSumExp = %v, want %v", got, want)
	}
}

func TestIm2colCol2imIdentityOnOnes(t *testing.T) {
	// With a 1x1 kernel, stride 1 and no padding, im2col is the identity.
	g, err := NewConvGeom(2, 3, 3, 1, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]float64, 2*3*3)
	for i := range img {
		img[i] = float64(i)
	}
	cols := make([]float64, 2*9)
	g.Im2col(img, cols)
	for i := range img {
		if cols[i] != img[i] {
			t.Fatalf("1x1 im2col not identity at %d", i)
		}
	}
	back := make([]float64, len(img))
	g.Col2im(cols, back)
	for i := range img {
		if back[i] != img[i] {
			t.Fatalf("1x1 col2im not identity at %d", i)
		}
	}
}

func TestConvGeomErrors(t *testing.T) {
	if _, err := NewConvGeom(1, 4, 4, 3, 3, 0, 1); err == nil {
		t.Fatal("zero stride must error")
	}
	if _, err := NewConvGeom(1, 2, 2, 5, 5, 1, 0); err == nil {
		t.Fatal("oversized kernel must error")
	}
	if _, err := NewConvGeom(1, 4, 4, 3, 3, 1, -1); err == nil {
		t.Fatal("negative pad must error")
	}
}

func TestCol2imAdjointOfIm2col(t *testing.T) {
	// <im2col(x), y> == <x, col2im(y)> for random x, y: the two ops are
	// adjoint linear maps, which is exactly what conv backward relies on.
	rng := rand.New(rand.NewSource(6))
	g, err := NewConvGeom(2, 5, 5, 3, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2*5*5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	colLen := 2 * 3 * 3 * g.OutH * g.OutW
	y := make([]float64, colLen)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	cols := make([]float64, colLen)
	g.Im2col(x, cols)
	lhs := 0.0
	for i := range cols {
		lhs += cols[i] * y[i]
	}
	back := make([]float64, len(x))
	g.Col2im(y, back)
	rhs := 0.0
	for i := range x {
		rhs += x[i] * back[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestRandNStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := RandN(rng, 2, 100, 100)
	mean := x.Mean()
	if math.Abs(mean) > 0.1 {
		t.Fatalf("RandN mean = %v, want ~0", mean)
	}
	variance := 0.0
	for _, v := range x.Data() {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(x.Size())
	if math.Abs(variance-4) > 0.3 {
		t.Fatalf("RandN variance = %v, want ~4", variance)
	}
}

func TestRandUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := RandUniform(rng, -2, 3, 1000)
	for _, v := range x.Data() {
		if v < -2 || v >= 3 {
			t.Fatalf("RandUniform value %v out of [-2,3)", v)
		}
	}
}

func TestHasNaN(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	if x.HasNaN() {
		t.Fatal("finite tensor flagged as NaN")
	}
	x.Set(math.NaN(), 0)
	if !x.HasNaN() {
		t.Fatal("NaN not detected")
	}
	x.Set(math.Inf(1), 0)
	if !x.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := FromSlice([]float64{1, 0}, 2)
	b := FromSlice([]float64{0, 1}, 2)
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cos(a,a) = %v, want 1", got)
	}
	if got := CosineSimilarity(a, b); math.Abs(got) > 1e-12 {
		t.Fatalf("cos(a,b) = %v, want 0", got)
	}
	zero := New(2)
	if got := CosineSimilarity(a, zero); got != 0 {
		t.Fatalf("cos with zero vector = %v, want 0", got)
	}
}

// Property: addition commutes for arbitrary same-shaped tensors.
func TestQuickAddCommutative(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		a := FromSlice(append([]float64(nil), xs[:n]...), n)
		b := FromSlice(append([]float64(nil), ys[:n]...), n)
		return Add(a, b).AllClose(Add(b, a), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ for random matrices.
func TestQuickMatMulTransposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := RandN(rng, 1, m, k)
		b := RandN(rng, 1, k, n)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		if !lhs.AllClose(rhs, 1e-10) {
			t.Fatalf("transpose identity failed for %dx%dx%d", m, k, n)
		}
	}
}

// Property: SumAxis over both axes equals total Sum.
func TestQuickSumAxisConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		m, n := 1+rng.Intn(6), 1+rng.Intn(6)
		x := RandN(rng, 1, m, n)
		bySteps := SumAxis(x, 0, false).Sum()
		if math.Abs(bySteps-x.Sum()) > 1e-9 {
			t.Fatalf("SumAxis inconsistent with Sum: %v vs %v", bySteps, x.Sum())
		}
	}
}
