package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	KH, KW        int // kernel height, width
	Stride, Pad   int
	OutH, OutW    int // derived output spatial dims
}

// NewConvGeom validates and completes a convolution geometry.
func NewConvGeom(inC, inH, inW, kh, kw, stride, pad int) (ConvGeom, error) {
	if stride <= 0 {
		return ConvGeom{}, fmt.Errorf("tensor: conv stride must be positive, got %d", stride)
	}
	if pad < 0 {
		return ConvGeom{}, fmt.Errorf("tensor: conv pad must be non-negative, got %d", pad)
	}
	outH := (inH+2*pad-kh)/stride + 1
	outW := (inW+2*pad-kw)/stride + 1
	if outH <= 0 || outW <= 0 {
		return ConvGeom{}, fmt.Errorf("tensor: conv kernel %dx%d does not fit input %dx%d (pad %d)", kh, kw, inH, inW, pad)
	}
	return ConvGeom{InC: inC, InH: inH, InW: inW, KH: kh, KW: kw, Stride: stride, Pad: pad, OutH: outH, OutW: outW}, nil
}

// Im2col unfolds a single image (C,H,W laid out contiguously in img) into a
// column matrix of shape (C*KH*KW, OutH*OutW) written into cols, which must
// have exactly that capacity. Padding positions contribute zeros.
func (g ConvGeom) Im2col(img []float64, cols []float64) {
	colW := g.OutH * g.OutW
	if len(cols) != g.InC*g.KH*g.KW*colW {
		panic(fmt.Sprintf("tensor: Im2col cols length %d, want %d", len(cols), g.InC*g.KH*g.KW*colW))
	}
	row := 0
	for c := 0; c < g.InC; c++ {
		chImg := img[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
		for ki := 0; ki < g.KH; ki++ {
			for kj := 0; kj < g.KW; kj++ {
				dst := cols[row*colW : (row+1)*colW]
				p := 0
				for oy := 0; oy < g.OutH; oy++ {
					iy := oy*g.Stride + ki - g.Pad
					if iy < 0 || iy >= g.InH {
						for ox := 0; ox < g.OutW; ox++ {
							dst[p] = 0
							p++
						}
						continue
					}
					rowImg := chImg[iy*g.InW : (iy+1)*g.InW]
					for ox := 0; ox < g.OutW; ox++ {
						ix := ox*g.Stride + kj - g.Pad
						if ix < 0 || ix >= g.InW {
							dst[p] = 0
						} else {
							dst[p] = rowImg[ix]
						}
						p++
					}
				}
				row++
			}
		}
	}
}

// Col2im folds a column matrix (C*KH*KW, OutH*OutW) back into image
// gradients, accumulating overlapping contributions into img (C,H,W).
// img is expected to be zeroed by the caller when a fresh gradient is wanted.
func (g ConvGeom) Col2im(cols []float64, img []float64) {
	colW := g.OutH * g.OutW
	row := 0
	for c := 0; c < g.InC; c++ {
		chImg := img[c*g.InH*g.InW : (c+1)*g.InH*g.InW]
		for ki := 0; ki < g.KH; ki++ {
			for kj := 0; kj < g.KW; kj++ {
				src := cols[row*colW : (row+1)*colW]
				p := 0
				for oy := 0; oy < g.OutH; oy++ {
					iy := oy*g.Stride + ki - g.Pad
					if iy < 0 || iy >= g.InH {
						p += g.OutW
						continue
					}
					rowImg := chImg[iy*g.InW : (iy+1)*g.InW]
					for ox := 0; ox < g.OutW; ox++ {
						ix := ox*g.Stride + kj - g.Pad
						if ix >= 0 && ix < g.InW {
							rowImg[ix] += src[p]
						}
						p++
					}
				}
				row++
			}
		}
	}
}
