//go:build race

package tensor

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
