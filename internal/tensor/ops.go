package tensor

import (
	"fmt"
	"math"
	"sync"
)

// BroadcastShapes returns the numpy-style broadcast of two shapes, or an
// error when the shapes are incompatible.
func BroadcastShapes(a, b []int) ([]int, error) {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		da, db := 1, 1
		if i >= n-len(a) {
			da = a[i-(n-len(a))]
		}
		if i >= n-len(b) {
			db = b[i-(n-len(b))]
		}
		switch {
		case da == db:
			out[i] = da
		case da == 1:
			out[i] = db
		case db == 1:
			out[i] = da
		default:
			return nil, fmt.Errorf("tensor: cannot broadcast shapes %v and %v", a, b)
		}
	}
	return out, nil
}

// bcScratch is the reusable stride/index scratch of one broadcasting walk.
// Ranks are tiny (≤ a handful of axes), but binaryOp and ReduceTo sit under
// every autograd op, so two or three make([]int, …) per call add up; the
// pool keeps the steady state allocation-free.
type bcScratch struct {
	sa, sb, idx []int
}

var bcPool = sync.Pool{New: func() any { return new(bcScratch) }}

// sized reslices *s to length n, growing the backing array only when needed.
// The returned slice's contents are unspecified.
func sized(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	}
	*s = (*s)[:n]
	return *s
}

// broadcastStridesInto fills dst (length len(out)) with strides for
// iterating a tensor of shape `shape` as if it had been broadcast to `out`
// (stride 0 on broadcast axes), and returns dst.
func broadcastStridesInto(dst, shape, out []int) []int {
	acc := 1
	off := len(out) - len(shape)
	for i := len(out) - 1; i >= 0; i-- {
		if i < off || shape[i-off] == 1 {
			dst[i] = 0
		} else {
			dst[i] = acc
			acc *= shape[i-off]
		}
	}
	return dst
}

// binaryOp applies f elementwise with numpy broadcasting.
func binaryOp(a, b *Tensor, f func(x, y float64) float64) *Tensor {
	// Fast path: identical shapes.
	if a.SameShape(b) {
		out := New(a.shape...)
		for i := range out.data {
			out.data[i] = f(a.data[i], b.data[i])
		}
		return out
	}
	outShape, err := BroadcastShapes(a.shape, b.shape)
	if err != nil {
		panic(err.Error())
	}
	out := New(outShape...)
	sc := bcPool.Get().(*bcScratch)
	sa := broadcastStridesInto(sized(&sc.sa, len(outShape)), a.shape, outShape)
	sb := broadcastStridesInto(sized(&sc.sb, len(outShape)), b.shape, outShape)
	idx := sized(&sc.idx, len(outShape))
	for i := range idx {
		idx[i] = 0
	}
	oa, ob := 0, 0
	for i := range out.data {
		out.data[i] = f(a.data[oa], b.data[ob])
		// Increment the multi-index and the two offsets.
		for ax := len(outShape) - 1; ax >= 0; ax-- {
			idx[ax]++
			oa += sa[ax]
			ob += sb[ax]
			if idx[ax] < outShape[ax] {
				break
			}
			idx[ax] = 0
			oa -= sa[ax] * outShape[ax]
			ob -= sb[ax] * outShape[ax]
		}
	}
	bcPool.Put(sc)
	return out
}

// Add returns a + b with broadcasting.
func Add(a, b *Tensor) *Tensor { return binaryOp(a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns a - b with broadcasting.
func Sub(a, b *Tensor) *Tensor { return binaryOp(a, b, func(x, y float64) float64 { return x - y }) }

// Mul returns the elementwise product with broadcasting.
func Mul(a, b *Tensor) *Tensor { return binaryOp(a, b, func(x, y float64) float64 { return x * y }) }

// Div returns the elementwise quotient with broadcasting.
func Div(a, b *Tensor) *Tensor { return binaryOp(a, b, func(x, y float64) float64 { return x / y }) }

// ReduceTo sums t down to the given target shape, inverting a broadcast.
// It is the gradient counterpart of broadcasting: summing over the axes that
// were expanded. The target shape must be broadcastable to t's shape.
func ReduceTo(t *Tensor, shape []int) *Tensor {
	if len(shape) == len(t.shape) {
		same := true
		for i := range shape {
			if shape[i] != t.shape[i] {
				same = false
				break
			}
		}
		if same {
			return t.Clone()
		}
	}
	out := New(shape...)
	sc := bcPool.Get().(*bcScratch)
	strides := broadcastStridesInto(sized(&sc.sa, len(t.shape)), shape, t.shape)
	idx := sized(&sc.idx, len(t.shape))
	for i := range idx {
		idx[i] = 0
	}
	off := 0
	for i := range t.data {
		out.data[off] += t.data[i]
		for ax := len(t.shape) - 1; ax >= 0; ax-- {
			idx[ax]++
			off += strides[ax]
			if idx[ax] < t.shape[ax] {
				break
			}
			idx[ax] = 0
			off -= strides[ax] * t.shape[ax]
		}
	}
	bcPool.Put(sc)
	return out
}

// AddInPlace adds src into t elementwise. Shapes must match in total size.
func (t *Tensor) AddInPlace(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: AddInPlace size mismatch %v vs %v", t.shape, src.shape))
	}
	for i, v := range src.data {
		t.data[i] += v
	}
}

// AddScaledInPlace adds alpha*src into t elementwise.
func (t *Tensor) AddScaledInPlace(alpha float64, src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: AddScaledInPlace size mismatch %v vs %v", t.shape, src.shape))
	}
	for i, v := range src.data {
		t.data[i] += alpha * v
	}
}

// ScaleInPlace multiplies every element by alpha.
func (t *Tensor) ScaleInPlace(alpha float64) {
	for i := range t.data {
		t.data[i] *= alpha
	}
}

// Scale returns alpha * t.
func Scale(t *Tensor, alpha float64) *Tensor {
	out := t.Clone()
	out.ScaleInPlace(alpha)
	return out
}

// AddScalar returns t + c.
func AddScalar(t *Tensor, c float64) *Tensor {
	out := t.Clone()
	for i := range out.data {
		out.data[i] += c
	}
	return out
}

// Apply returns f applied elementwise.
func Apply(t *Tensor, f func(float64) float64) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = f(v)
	}
	return out
}

// Neg returns -t.
func Neg(t *Tensor) *Tensor { return Scale(t, -1) }

// Exp returns e^t elementwise.
func Exp(t *Tensor) *Tensor { return Apply(t, math.Exp) }

// Log returns the natural log elementwise.
func Log(t *Tensor) *Tensor { return Apply(t, math.Log) }

// Sqrt returns the square root elementwise.
func Sqrt(t *Tensor) *Tensor { return Apply(t, math.Sqrt) }

// Tanh returns tanh elementwise.
func Tanh(t *Tensor) *Tensor { return Apply(t, math.Tanh) }

// ReLU returns max(0, x) elementwise.
func ReLU(t *Tensor) *Tensor {
	return Apply(t, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// Dot returns the inner product of two equally-sized tensors viewed as flat
// vectors.
func Dot(a, b *Tensor) float64 {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor: Dot size mismatch %v vs %v", a.shape, b.shape))
	}
	s := 0.0
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s
}

// CosineSimilarity returns the cosine similarity of two equally-sized
// tensors viewed as flat vectors. Zero vectors yield similarity 0.
func CosineSimilarity(a, b *Tensor) float64 {
	na, nb := a.L2Norm(), b.L2Norm()
	//fedvet:ignore floatbits exact zero-vector guard: norms are non-negative and the check is a pure function of the bits
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}
