package tensor

import (
	"fmt"

	"reffil/internal/parallel"
)

// minChunkOps is the scalar-operation budget below which a matmul chunk is
// not worth a goroutine: kernels fall back to the calling goroutine for
// anything smaller, so the tiny matmuls that dominate mini-scale training do
// not pay fan-out overhead.
const minChunkOps = parallel.DefaultChunkOps

// blockJ is the output-column tile width of the blocked matmul kernels. The
// j axis is the only one that may be tiled: every output element's value is
// a sum over the shared dimension p, and the repo's determinism contract
// (bit-identical results at any worker count and any tiling) requires that
// per-element summation order to stay exactly the serial kernel's ascending
// p. Tiling j (or i) only reorders *which* independent elements are computed
// when — never how any one element accumulates — so it is always safe.
// Tiling p would split each element's sum into per-tile partials and change
// the floating-point result, so no kernel here does it.
//
// 128 columns keep one B panel row (128×8 B = one KiB) prefetch-friendly and
// a whole k-row panel inside L2 for the k values these models use, while
// staying wide enough that the per-tile loop overhead is noise.
const blockJ = 128

// matmulPanels pools the packed B panels of the blocked kernels so steady
// state matmul performs no scratch allocations.
var matmulPanels parallel.ScratchPool[float64]

// MatMul multiplies two 2-D tensors: (m,k) x (k,n) -> (m,n).
func MatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	grain := parallel.GrainForCost(2*k*n, minChunkOps)
	if n <= blockJ {
		// One tile: packing would be a pure extra pass over B, and the
		// unpacked kernel already streams B rows sequentially.
		parallel.For(m, grain, func(lo, hi int) {
			matmulRows(out.data, a.data, b.data, lo, hi, k, n)
		})
		return out
	}
	pb := matmulPanels.Get(k * n)
	panels := *pb
	packPanels(panels, b.data, k, n)
	parallel.For(m, grain, func(lo, hi int) {
		matmulRowsBlocked(out.data, a.data, panels, lo, hi, k, n)
	})
	matmulPanels.Put(pb)
	return out
}

// packPanels copies B (k,n) into j-tile-major panels: tile t holds columns
// [t*blockJ, t*blockJ+tw) as k contiguous rows of width tw at panel offset
// t*blockJ*k. Only the last tile may be ragged, so the offsets line up and
// the whole packing is exactly k*n floats. Tiles are independent, so the
// copy fans out over internal/parallel.
func packPanels(panels, b []float64, k, n int) {
	nt := (n + blockJ - 1) / blockJ
	parallel.For(nt, parallel.GrainForCost(k*blockJ, minChunkOps), func(lo, hi int) {
		for t := lo; t < hi; t++ {
			packPanel(panels, b, k, n, t)
		}
	})
}

// packPanel packs tile t of B (k,n); see packPanels for the layout.
func packPanel(panels, b []float64, k, n, t int) {
	j0 := t * blockJ
	tw := n - j0
	if tw > blockJ {
		tw = blockJ
	}
	dst := panels[j0*k : j0*k+k*tw]
	for p := 0; p < k; p++ {
		copy(dst[p*tw:(p+1)*tw], b[p*n+j0:p*n+j0+tw])
	}
}

// matmulRows computes rows [lo,hi) of C = A(m,k) * B(k,n) into c, which must
// be zeroed. The loop order (i,p,j) streams B rows sequentially, which is
// the cache friendly order for row-major storage. Each output row depends
// only on its own A row and all of B, so disjoint row ranges are safe to
// compute concurrently and the per-element accumulation order is identical
// at any chunking.
func matmulRows(c, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			//fedvet:ignore floatbits exact zero-skip: the guard is a pure function of the operand bits, so skipping zero contributions is deterministic
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j := range bp {
				ci[j] += av * bp[j]
			}
		}
	}
}

// matmulRowsBlocked is matmulRows over B pre-packed into blockJ-wide panels
// (see packPanels). Processing one panel across all rows of the chunk keeps
// the panel (k*blockJ floats) resident in cache instead of re-streaming all
// of B once per output row. The inner accumulation is unchanged: for every
// output element, p ascends 0..k-1 with the same zero-skip as matmulRows, so
// results are bit-identical to the unblocked kernel.
func matmulRowsBlocked(c, a, panels []float64, lo, hi, k, n int) {
	for j0 := 0; j0 < n; j0 += blockJ {
		tw := n - j0
		if tw > blockJ {
			tw = blockJ
		}
		panel := panels[j0*k : j0*k+k*tw]
		for i := lo; i < hi; i++ {
			ci := c[i*n+j0 : i*n+j0+tw]
			ai := a[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := ai[p]
				//fedvet:ignore floatbits exact zero-skip: the guard is a pure function of the operand bits, so skipping zero contributions is deterministic
				if av == 0 {
					continue
				}
				bp := panel[p*tw : (p+1)*tw]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	}
}

// matmulKernel computes the full C = A(m,k) * B(k,n) serially into c, which
// must be zeroed, using panels as packing scratch when the width calls for
// the blocked kernel (batched callers parallelize over the batch axis
// instead and pass a reusable panel buffer).
func matmulKernel(c, a, b []float64, m, k, n int, panels []float64) {
	if n <= blockJ {
		matmulRows(c, a, b, 0, m, k, n)
		return
	}
	for t := 0; t < (n+blockJ-1)/blockJ; t++ {
		packPanel(panels, b, k, n, t)
	}
	matmulRowsBlocked(c, a, panels, 0, m, k, n)
}

// MatMulT1 computes aᵀ·b for a (k,m) and b (k,n) -> (m,n) without
// materializing the transpose. Output rows are partitioned across workers
// and the output columns are tiled blockJ wide; within a tile the
// shared-dimension loop stays outermost so B rows stream sequentially, the
// output tile stays cache-resident across the whole p sweep, and the
// accumulation order per element matches the serial kernel exactly.
func MatMulT1(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulT1 needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT1 inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	parallel.For(m, parallel.GrainForCost(2*k*n, minChunkOps), func(lo, hi int) {
		for j0 := 0; j0 < n; j0 += blockJ {
			tw := n - j0
			if tw > blockJ {
				tw = blockJ
			}
			for p := 0; p < k; p++ {
				ap := a.data[p*m : (p+1)*m]
				bp := b.data[p*n+j0 : p*n+j0+tw]
				for i := lo; i < hi; i++ {
					av := ap[i]
					//fedvet:ignore floatbits exact zero-skip: the guard is a pure function of the operand bits, so skipping zero contributions is deterministic
					if av == 0 {
						continue
					}
					ci := out.data[i*n+j0 : i*n+j0+tw]
					for j, bv := range bp {
						ci[j] += av * bv
					}
				}
			}
		}
	})
	return out
}

// MatMulT2 computes a·bᵀ for a (m,k) and b (n,k) -> (m,n) without
// materializing the transpose. The output columns are tiled blockJ wide so
// the tile's B rows (tw*k floats) stay cache-resident across every A row of
// the chunk; each element is still one uninterrupted dot product over p.
func MatMulT2(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulT2 needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT2 inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	parallel.For(m, parallel.GrainForCost(2*k*n, minChunkOps), func(lo, hi int) {
		for j0 := 0; j0 < n; j0 += blockJ {
			j1 := j0 + blockJ
			if j1 > n {
				j1 = n
			}
			for i := lo; i < hi; i++ {
				ai := a.data[i*k : (i+1)*k]
				ci := out.data[i*n : (i+1)*n]
				for j := j0; j < j1; j++ {
					bj := b.data[j*k : (j+1)*k]
					s := 0.0
					for p := range ai {
						s += ai[p] * bj[p]
					}
					ci[j] = s
				}
			}
		}
	})
	return out
}

// BatchMatMul multiplies two 3-D tensors batch-wise:
// (B,m,k) x (B,k,n) -> (B,m,n). Batch elements are independent, so the
// batch axis is the parallel axis; each chunk reuses one pooled panel buffer
// across its batch elements for the blocked per-element kernel.
func BatchMatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 3 || b.NDim() != 3 {
		panic(fmt.Sprintf("tensor: BatchMatMul needs 3-D operands, got %v and %v", a.shape, b.shape))
	}
	if a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: BatchMatMul batch mismatch %v x %v", a.shape, b.shape))
	}
	bs, m, k := a.shape[0], a.shape[1], a.shape[2]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: BatchMatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	n := b.shape[2]
	out := New(bs, m, n)
	blocked := n > blockJ
	parallel.For(bs, parallel.GrainForCost(2*m*k*n, minChunkOps), func(lo, hi int) {
		var panels []float64
		var pb *[]float64
		if blocked {
			pb = matmulPanels.Get(k * n)
			panels = *pb
		}
		for i := lo; i < hi; i++ {
			matmulKernel(out.data[i*m*n:(i+1)*m*n], a.data[i*m*k:(i+1)*m*k], b.data[i*k*n:(i+1)*k*n], m, k, n, panels)
		}
		if blocked {
			matmulPanels.Put(pb)
		}
	})
	return out
}

// MatVec multiplies a 2-D tensor (m,k) by a vector (k,) -> (m,). Output
// rows are independent dot products, so the row axis fans out over
// internal/parallel like the other kernels.
func MatVec(a, v *Tensor) *Tensor {
	if a.NDim() != 2 || v.NDim() != 1 {
		panic(fmt.Sprintf("tensor: MatVec needs (2-D, 1-D), got %v and %v", a.shape, v.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if v.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x %v", a.shape, v.shape))
	}
	out := New(m)
	parallel.For(m, parallel.GrainForCost(2*k, minChunkOps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.data[i*k : (i+1)*k]
			s := 0.0
			for p := range ai {
				s += ai[p] * v.data[p]
			}
			out.data[i] = s
		}
	})
	return out
}
