package tensor

import (
	"fmt"

	"reffil/internal/parallel"
)

// minChunkOps is the scalar-operation budget below which a matmul chunk is
// not worth a goroutine: kernels fall back to the calling goroutine for
// anything smaller, so the tiny matmuls that dominate mini-scale training do
// not pay fan-out overhead.
const minChunkOps = parallel.DefaultChunkOps

// MatMul multiplies two 2-D tensors: (m,k) x (k,n) -> (m,n).
func MatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	parallel.For(m, parallel.GrainForCost(2*k*n, minChunkOps), func(lo, hi int) {
		matmulRows(out.data, a.data, b.data, lo, hi, k, n)
	})
	return out
}

// matmulRows computes rows [lo,hi) of C = A(m,k) * B(k,n) into c, which must
// be zeroed. The loop order (i,p,j) streams B rows sequentially, which is
// the cache friendly order for row-major storage. Each output row depends
// only on its own A row and all of B, so disjoint row ranges are safe to
// compute concurrently and the per-element accumulation order is identical
// at any chunking.
func matmulRows(c, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j := range bp {
				ci[j] += av * bp[j]
			}
		}
	}
}

// matmulKernel computes the full C = A(m,k) * B(k,n) serially (batched
// callers parallelize over the batch axis instead).
func matmulKernel(c, a, b []float64, m, k, n int) {
	matmulRows(c, a, b, 0, m, k, n)
}

// MatMulT1 computes aᵀ·b for a (k,m) and b (k,n) -> (m,n) without
// materializing the transpose. Output rows are partitioned across workers;
// within a row range the shared-dimension loop stays outermost so B rows
// stream sequentially and the accumulation order per element matches the
// serial kernel exactly.
func MatMulT1(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulT1 needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT1 inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	parallel.For(m, parallel.GrainForCost(2*k*n, minChunkOps), func(lo, hi int) {
		for p := 0; p < k; p++ {
			ap := a.data[p*m : (p+1)*m]
			bp := b.data[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				av := ap[i]
				if av == 0 {
					continue
				}
				ci := out.data[i*n : (i+1)*n]
				for j := range bp {
					ci[j] += av * bp[j]
				}
			}
		}
	})
	return out
}

// MatMulT2 computes a·bᵀ for a (m,k) and b (n,k) -> (m,n) without
// materializing the transpose.
func MatMulT2(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulT2 needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT2 inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	parallel.For(m, parallel.GrainForCost(2*k*n, minChunkOps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.data[i*k : (i+1)*k]
			ci := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.data[j*k : (j+1)*k]
				s := 0.0
				for p := range ai {
					s += ai[p] * bj[p]
				}
				ci[j] = s
			}
		}
	})
	return out
}

// BatchMatMul multiplies two 3-D tensors batch-wise:
// (B,m,k) x (B,k,n) -> (B,m,n). Batch elements are independent, so the
// batch axis is the parallel axis.
func BatchMatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 3 || b.NDim() != 3 {
		panic(fmt.Sprintf("tensor: BatchMatMul needs 3-D operands, got %v and %v", a.shape, b.shape))
	}
	if a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: BatchMatMul batch mismatch %v x %v", a.shape, b.shape))
	}
	bs, m, k := a.shape[0], a.shape[1], a.shape[2]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: BatchMatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	n := b.shape[2]
	out := New(bs, m, n)
	parallel.For(bs, parallel.GrainForCost(2*m*k*n, minChunkOps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			matmulKernel(out.data[i*m*n:(i+1)*m*n], a.data[i*m*k:(i+1)*m*k], b.data[i*k*n:(i+1)*k*n], m, k, n)
		}
	})
	return out
}

// MatVec multiplies a 2-D tensor (m,k) by a vector (k,) -> (m,).
func MatVec(a, v *Tensor) *Tensor {
	if a.NDim() != 2 || v.NDim() != 1 {
		panic(fmt.Sprintf("tensor: MatVec needs (2-D, 1-D), got %v and %v", a.shape, v.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if v.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x %v", a.shape, v.shape))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		s := 0.0
		for p := range ai {
			s += ai[p] * v.data[p]
		}
		out.data[i] = s
	}
	return out
}
