package tensor

import "fmt"

// MatMul multiplies two 2-D tensors: (m,k) x (k,n) -> (m,n).
func MatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	matmulKernel(out.data, a.data, b.data, m, k, n)
	return out
}

// matmulKernel computes C = A(m,k) * B(k,n) into c, which must be zeroed.
// The loop order (i,p,j) streams B rows sequentially, which is the cache
// friendly order for row-major storage.
func matmulKernel(c, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j := range bp {
				ci[j] += av * bp[j]
			}
		}
	}
}

// MatMulT1 computes aᵀ·b for a (k,m) and b (k,n) -> (m,n) without
// materializing the transpose.
func MatMulT1(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulT1 needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT1 inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.data[p*m : (p+1)*m]
		bp := b.data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := ap[i]
			if av == 0 {
				continue
			}
			ci := out.data[i*n : (i+1)*n]
			for j := range bp {
				ci[j] += av * bp[j]
			}
		}
	}
	return out
}

// MatMulT2 computes a·bᵀ for a (m,k) and b (n,k) -> (m,n) without
// materializing the transpose.
func MatMulT2(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic(fmt.Sprintf("tensor: MatMulT2 needs 2-D operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT2 inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		ci := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			s := 0.0
			for p := range ai {
				s += ai[p] * bj[p]
			}
			ci[j] = s
		}
	}
	return out
}

// BatchMatMul multiplies two 3-D tensors batch-wise:
// (B,m,k) x (B,k,n) -> (B,m,n).
func BatchMatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 3 || b.NDim() != 3 {
		panic(fmt.Sprintf("tensor: BatchMatMul needs 3-D operands, got %v and %v", a.shape, b.shape))
	}
	if a.shape[0] != b.shape[0] {
		panic(fmt.Sprintf("tensor: BatchMatMul batch mismatch %v x %v", a.shape, b.shape))
	}
	bs, m, k := a.shape[0], a.shape[1], a.shape[2]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: BatchMatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	n := b.shape[2]
	out := New(bs, m, n)
	for i := 0; i < bs; i++ {
		matmulKernel(out.data[i*m*n:(i+1)*m*n], a.data[i*m*k:(i+1)*m*k], b.data[i*k*n:(i+1)*k*n], m, k, n)
	}
	return out
}

// MatVec multiplies a 2-D tensor (m,k) by a vector (k,) -> (m,).
func MatVec(a, v *Tensor) *Tensor {
	if a.NDim() != 2 || v.NDim() != 1 {
		panic(fmt.Sprintf("tensor: MatVec needs (2-D, 1-D), got %v and %v", a.shape, v.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if v.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x %v", a.shape, v.shape))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		s := 0.0
		for p := range ai {
			s += ai[p] * v.data[p]
		}
		out.data[i] = s
	}
	return out
}
