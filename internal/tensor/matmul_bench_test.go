package tensor

import (
	"math/rand"
	"runtime"
	"testing"
)

// Kernel microbenchmarks behind BENCH_kernels.json. GOMAXPROCS is pinned to
// 1 in the serial sub-benchmarks so the blocked-vs-unblocked comparison
// isolates the cache effects of j-tiling and B-panel packing from
// parallel fan-out (the 1-CPU CI container cannot show fan-out anyway);
// the parallel variants run at the machine's width. Shapes are
// training-scale for this repo's models: the classifier matmul is
// (batch, feature) x (feature, classes), the attention/backbone matmuls run
// a few hundred wide.

func benchPair(m, k, n int) (*Tensor, *Tensor) {
	rng := rand.New(rand.NewSource(9))
	return RandN(rng, 1, m, k), RandN(rng, 1, k, n)
}

// BenchmarkMatMulBlocked prices MatMul on a width that engages the blocked
// kernel (n > blockJ), against the unblocked row kernel on the same data.
func BenchmarkMatMulBlocked(b *testing.B) {
	const m, k, n = 128, 384, 512
	x, y := benchPair(m, k, n)
	b.Run("unblocked", func(b *testing.B) {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		out := New(m, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range out.data {
				out.data[j] = 0
			}
			matmulRows(out.data, x.data, y.data, 0, m, k, n)
		}
	})
	b.Run("blocked", func(b *testing.B) {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			MatMul(x, y)
		}
	})
	b.Run("blocked-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MatMul(x, y)
		}
	})
}

func BenchmarkMatMulT1(b *testing.B) {
	const m, k, n = 128, 384, 512
	rng := rand.New(rand.NewSource(10))
	x, y := RandN(rng, 1, k, m), RandN(rng, 1, k, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulT1(x, y)
	}
}

func BenchmarkMatMulT2(b *testing.B) {
	const m, k, n = 128, 384, 512
	rng := rand.New(rand.NewSource(11))
	x, y := RandN(rng, 1, m, k), RandN(rng, 1, n, k)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulT2(x, y)
	}
}

func BenchmarkBatchMatMulBlocked(b *testing.B) {
	const bs, m, k, n = 8, 64, 96, 192
	rng := rand.New(rand.NewSource(12))
	x, y := RandN(rng, 1, bs, m, k), RandN(rng, 1, bs, k, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BatchMatMul(x, y)
	}
}

func BenchmarkMatVec(b *testing.B) {
	const m, k = 512, 384
	rng := rand.New(rand.NewSource(13))
	x, v := RandN(rng, 1, m, k), RandN(rng, 1, k)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatVec(x, v)
	}
}
