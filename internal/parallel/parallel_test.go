package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000, 4099} {
		for _, grain := range []int{1, 3, 64, 5000} {
			hits := make([]int32, n)
			For(n, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d grain=%d: bad chunk [%d,%d)", n, grain, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d grain=%d: index %d covered %d times", n, grain, i, h)
				}
			}
		}
	}
}

func TestForSerialBelowGrain(t *testing.T) {
	calls := 0
	For(10, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("expected one full chunk, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("small range split into %d chunks, want 1", calls)
	}
}

func TestForNoWorkNoCalls(t *testing.T) {
	For(0, 1, func(lo, hi int) { t.Fatal("body called for empty range") })
	For(-3, 1, func(lo, hi int) { t.Fatal("body called for negative range") })
}

// TestForDeterministicSum checks the documented determinism contract on a
// floating-point reduction: per-index results must be bit-identical no
// matter how the range is chunked or how many processors are available.
func TestForDeterministicSum(t *testing.T) {
	const n = 513
	serial := make([]float64, n)
	work := func(out []float64) func(lo, hi int) {
		return func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s := 0.0
				for j := 1; j <= 100; j++ {
					s += 1 / float64(i*j+1)
				}
				out[i] = s
			}
		}
	}
	work(serial)(0, n)
	for _, grain := range []int{1, 7, 100} {
		got := make([]float64, n)
		For(n, grain, work(got))
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("grain %d: index %d differs from serial result", grain, i)
			}
		}
	}
}

func TestForNested(t *testing.T) {
	// Nested regions must not deadlock or lose coverage even when the token
	// pool is exhausted.
	outer := make([]int32, 8)
	For(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var inner int32
			For(100, 10, func(l, h int) {
				atomic.AddInt32(&inner, int32(h-l))
			})
			if inner != 100 {
				t.Errorf("nested region covered %d of 100", inner)
			}
			atomic.AddInt32(&outer[i], 1)
		}
	})
	for i, h := range outer {
		if h != 1 {
			t.Fatalf("outer index %d covered %d times", i, h)
		}
	}
}

// TestRunChunksConcurrent drives the chunk splitter directly with forced
// helper counts, so the concurrent code path (goroutine spawning, disjoint
// chunk writes, the trailing-worker release branch) is exercised and
// race-checked even on single-CPU machines whose token pool is empty.
func TestRunChunksConcurrent(t *testing.T) {
	for _, helpers := range []int{1, 3, 7} {
		for _, n := range []int{1, 2, 8, 513} {
			hits := make([]int32, n)
			runChunks(n, helpers, false, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("helpers=%d n=%d: bad chunk [%d,%d)", helpers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("helpers=%d n=%d: index %d covered %d times", helpers, n, i, h)
				}
			}
		}
	}
}

// TestRunChunksDeterministicAtAnyHelperCount pins the chunking-invariance
// claim with real concurrency: per-index floating-point results must be
// bit-identical whether the range runs serially or across many goroutines.
func TestRunChunksDeterministicAtAnyHelperCount(t *testing.T) {
	const n = 257
	work := func(out []float64) func(lo, hi int) {
		return func(lo, hi int) {
			for i := lo; i < hi; i++ {
				s := 0.0
				for j := 1; j <= 200; j++ {
					s += 1 / float64(i*j+1)
				}
				out[i] = s
			}
		}
	}
	serial := make([]float64, n)
	work(serial)(0, n)
	for _, helpers := range []int{1, 4, 16} {
		got := make([]float64, n)
		runChunks(n, helpers, false, work(got))
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("helpers=%d: index %d differs from serial result", helpers, i)
			}
		}
	}
}

func TestReserveRelease(t *testing.T) {
	cap := maxHelpers()
	got := Reserve(cap + 5)
	if got != cap {
		t.Fatalf("Reserve over capacity returned %d, want pool size %d", got, cap)
	}
	// Pool drained: For must degrade to one serial chunk.
	calls := 0
	For(1<<20, 1, func(lo, hi int) { calls++ })
	if calls != 1 {
		t.Fatalf("For split into %d chunks with a drained pool, want 1", calls)
	}
	Release(got)
	if again := Reserve(1); cap > 0 && again != 1 {
		t.Fatalf("Reserve after Release returned %d, want 1", again)
	} else {
		Release(again)
	}
}

func TestGrainForCost(t *testing.T) {
	if g := GrainForCost(10, 1000); g != 100 {
		t.Fatalf("GrainForCost(10, 1000) = %d, want 100", g)
	}
	if g := GrainForCost(0, 1000); g < 1 {
		t.Fatalf("zero-cost grain %d, want >= 1", g)
	}
	if g := GrainForCost(5000, 1000); g != 1 {
		t.Fatalf("expensive-item grain %d, want 1", g)
	}
}

func TestForUsesMultipleGoroutinesWhenAvailable(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-processor environment: helper pool is empty by design")
	}
	var peak int32
	var cur int32
	For(1<<16, 1, func(lo, hi int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		for i := lo; i < hi; i++ {
			_ = i * i
		}
		atomic.AddInt32(&cur, -1)
	})
	if peak < 2 {
		t.Logf("peak concurrency %d (timing-dependent; not a failure)", peak)
	}
}
