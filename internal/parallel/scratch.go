package parallel

import "sync"

// ScratchPool is a concurrency-safe arena of reusable []T buffers for kernel
// temporaries: matmul packing panels, im2col column matrices, wire-codec
// significance planes. It exists so hot paths that need a sized buffer per
// call stop allocating (and, for large buffers, stop paying the make()
// zeroing pass) once the pool is warm.
//
// Get hands out a *[]T so that Put can return the very same header to the
// pool without boxing a fresh one — the steady state is zero allocations.
// Buffer contents are arbitrary on Get: every element must be written before
// it is read, which all current users guarantee by construction (packing
// copies, Im2col writes every position, plane shuffles assign before or-ing).
// Determinism is unaffected: a pooled buffer never carries observable state
// between uses.
type ScratchPool[T any] struct {
	pool sync.Pool
}

// Get returns a pooled buffer resliced to length n (capacity may be larger).
// The contents are unspecified.
func (p *ScratchPool[T]) Get(n int) *[]T {
	b, _ := p.pool.Get().(*[]T)
	if b == nil {
		s := make([]T, n)
		return &s
	}
	if cap(*b) < n {
		*b = make([]T, n)
	}
	*b = (*b)[:n]
	return b
}

// Put returns a buffer obtained from Get to the pool. The caller must not
// use the slice afterwards.
func (p *ScratchPool[T]) Put(b *[]T) {
	p.pool.Put(b)
}
