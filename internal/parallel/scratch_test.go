package parallel

import (
	"sync"
	"testing"
)

func TestScratchPoolSizesAndReuses(t *testing.T) {
	var p ScratchPool[float64]
	b := p.Get(16)
	if len(*b) != 16 {
		t.Fatalf("Get(16) length = %d", len(*b))
	}
	(*b)[0] = 1
	p.Put(b)
	// A pooled buffer may come back with stale contents but must be
	// correctly resliced, both shrinking and growing.
	small := p.Get(4)
	if len(*small) != 4 {
		t.Fatalf("Get(4) length = %d", len(*small))
	}
	p.Put(small)
	big := p.Get(64)
	if len(*big) != 64 {
		t.Fatalf("Get(64) length = %d", len(*big))
	}
	p.Put(big)
}

func TestScratchPoolConcurrent(t *testing.T) {
	var p ScratchPool[byte]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 1 + (g+i)%512
				b := p.Get(n)
				if len(*b) != n {
					t.Errorf("Get(%d) length = %d", n, len(*b))
					return
				}
				for j := range *b {
					(*b)[j] = byte(g)
				}
				p.Put(b)
			}
		}(g)
	}
	wg.Wait()
}
