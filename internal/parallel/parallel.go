// Package parallel is the shared chunked parallel-for runtime behind the
// tensor kernels and the federated round scheduler.
//
// Work over an index range is split into contiguous chunks that run on a
// bounded set of helper goroutines. Two properties make the runtime safe to
// use from the numeric kernels:
//
//   - Determinism: chunks are disjoint, and each output index is produced by
//     exactly one chunk using the same inner loop order as the serial code,
//     so results are bit-for-bit identical at any worker count (including
//     fully serial execution).
//   - Bounded concurrency: helper goroutines are drawn from a global token
//     pool sized to GOMAXPROCS. Nested parallel regions (an engine worker
//     training a client whose matmuls also call For) degrade gracefully to
//     serial execution instead of oversubscribing the machine.
package parallel

import (
	"runtime"
	"sync"
)

// tokens is the global helper budget: one slot per hardware processor
// beyond the calling goroutine. Sizing by NumCPU (fixed for the process
// lifetime) rather than GOMAXPROCS keeps the pool usable if GOMAXPROCS is
// raised later; the live GOMAXPROCS value still caps each For call, so
// lowering it (as the serial benchmarks do) disables fan-out immediately.
// Acquisition is non-blocking, so a caller that finds the pool drained
// simply runs its loop serially.
var tokens = make(chan struct{}, maxHelpers())

func maxHelpers() int {
	n := runtime.NumCPU() - 1
	if g := runtime.GOMAXPROCS(0) - 1; g > n {
		n = g
	}
	if n < 0 {
		n = 0
	}
	return n
}

// DefaultChunkOps is the scalar-operation budget below which a chunk of
// numeric work is not worth a goroutine. The tensor and autograd kernels
// derive their grains from it via GrainForCost; tune it in one place after
// re-benchmarking on target hardware.
const DefaultChunkOps = 1 << 15

// For runs body over the half-open range [0, n), splitting it into at most
// ceil(n/grain) contiguous chunks executed concurrently. body(lo, hi) must
// handle any sub-range independently: chunks never overlap and every index
// is covered exactly once. grain is the minimum chunk size — the serial
// fallback threshold below which spawning a goroutine costs more than the
// work it would carry.
//
// The calling goroutine always participates, so For(n, grain, body) with no
// free helper tokens is exactly body(0, n).
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	maxWorkers := (n + grain - 1) / grain
	if p := runtime.GOMAXPROCS(0); maxWorkers > p {
		maxWorkers = p
	}
	helpers := 0
	for helpers < maxWorkers-1 {
		select {
		case tokens <- struct{}{}:
			helpers++
			continue
		default:
		}
		break
	}
	if helpers == 0 {
		body(0, n)
		return
	}
	runChunks(n, helpers, true, body)
}

// runChunks splits [0,n) into helpers+1 contiguous chunks and runs them on
// the calling goroutine plus helpers spawned goroutines. When release is
// set, each spawned goroutine returns one pool token on completion. Kept
// separate from For so tests can drive concurrent chunking directly even on
// machines whose token pool is empty (single-CPU containers).
func runChunks(n, helpers int, release bool, body func(lo, hi int)) {
	workers := helpers + 1
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			// ceil division can leave trailing workers without work.
			if release {
				<-tokens
			}
			continue
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if release {
				defer func() { <-tokens }()
			}
			body(lo, hi)
		}(lo, hi)
	}
	body(0, chunk)
	wg.Wait()
}

// Reserve withdraws up to k helper tokens from the pool without blocking
// and returns how many it got. A coarse-grained scheduler (the federated
// engine's per-client worker pool) reserves its worker count so the
// fine-grained kernel fan-out underneath cannot oversubscribe the machine;
// pair every Reserve with a Release of the returned count.
func Reserve(k int) int {
	got := 0
	for got < k {
		select {
		case tokens <- struct{}{}:
			got++
			continue
		default:
		}
		break
	}
	return got
}

// Release returns k previously Reserved tokens to the pool.
func Release(k int) {
	for i := 0; i < k; i++ {
		<-tokens
	}
}

// GrainForCost converts a per-item cost estimate (in scalar operations) into
// a chunk grain such that each chunk carries at least minChunkOps work.
// Kernels use it so that small operands stay on the calling goroutine.
func GrainForCost(perItemOps, minChunkOps int) int {
	if perItemOps <= 0 {
		perItemOps = 1
	}
	g := minChunkOps / perItemOps
	if g < 1 {
		g = 1
	}
	return g
}
