package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"reffil/internal/tensor"
)

// runMagic identifies run-state checkpoint files (coordinator resume); the
// trailing digits are the format version.
var runMagic = [8]byte{'R', 'F', 'L', 'R', 'U', 'N', '0', '1'}

const (
	// maxTasks bounds the serialized accuracy matrix.
	maxTasks = 4096
	// maxPayload bounds the method wire-state payload (256 MiB).
	maxPayload = 1 << 28
)

// RunState is everything a restarted coordinator needs to resume a
// federated run from a round boundary and reproduce the uninterrupted
// run's accuracy matrix bit for bit: the resume position, the accuracy
// rows recorded so far, the global model state and the method's wire-state
// payload (fl.WireStater — LwF's teacher, EWC's Fisher/anchor maps,
// RefFiL's prompt bank). Method and Seed guard against resuming with a
// mismatched configuration; everything derivable from (method, seed, task
// index) — datasets, shards, client pools, RNG draws — is reconstructed by
// the engine's fast-forward replay instead of being serialized.
type RunState struct {
	// Method is the algorithm flag the run was started with.
	Method string
	// Seed is the shared run seed.
	Seed int64
	// NextTask/NextRound are the resume position: the first round the
	// resumed run executes. NextRound may equal the configured round count,
	// meaning the task's rounds all completed but its task-end hooks and
	// evaluation had not yet run when the snapshot was taken.
	NextTask  int
	NextRound int
	// Matrix holds the accuracy rows recorded before the snapshot
	// (metrics.Matrix.A; unevaluated cells are NaN).
	Matrix [][]float64
	// Global is the aggregated global model state at the snapshot.
	Global map[string]*tensor.Tensor
	// Payload is the method's encoded wire state at the snapshot;
	// HasPayload marks that the method carries one.
	Payload    []byte
	HasPayload bool
}

// SaveRunState writes a resumable run snapshot to w. The layout is the
// header (magic, method, seed, position, matrix, payload) followed by the
// global state dict in the standard checkpoint format.
func SaveRunState(w io.Writer, rs *RunState) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(runMagic[:]); err != nil {
		return fmt.Errorf("checkpoint: writing run header: %w", err)
	}
	if len(rs.Method) == 0 || len(rs.Method) > maxNameLen {
		return fmt.Errorf("checkpoint: invalid method name length %d", len(rs.Method))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(rs.Method))); err != nil {
		return err
	}
	if _, err := bw.WriteString(rs.Method); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, rs.Seed); err != nil {
		return err
	}
	if rs.NextTask < 0 || rs.NextTask > maxTasks || rs.NextRound < 0 {
		return fmt.Errorf("checkpoint: invalid resume position task %d round %d", rs.NextTask, rs.NextRound)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(rs.NextTask)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(rs.NextRound)); err != nil {
		return err
	}
	if len(rs.Matrix) > maxTasks {
		return fmt.Errorf("checkpoint: matrix with %d rows exceeds %d", len(rs.Matrix), maxTasks)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(rs.Matrix))); err != nil {
		return err
	}
	for _, row := range rs.Matrix {
		if len(row) > maxTasks {
			return fmt.Errorf("checkpoint: matrix row with %d cells exceeds %d", len(row), maxTasks)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(row))); err != nil {
			return err
		}
		for _, v := range row {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	hasPayload := byte(0)
	if rs.HasPayload {
		hasPayload = 1
	}
	if err := bw.WriteByte(hasPayload); err != nil {
		return err
	}
	if len(rs.Payload) > maxPayload {
		return fmt.Errorf("checkpoint: payload of %d bytes exceeds %d", len(rs.Payload), maxPayload)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(rs.Payload))); err != nil {
		return err
	}
	if _, err := bw.Write(rs.Payload); err != nil {
		return err
	}
	if err := Save(bw, rs.Global); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("checkpoint: flushing run state: %w", err)
	}
	return nil
}

// LoadRunState reads a resumable run snapshot from r, validating every
// size field before allocating.
func LoadRunState(r io.Reader) (*RunState, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading run header: %w", err)
	}
	if got != runMagic {
		return nil, fmt.Errorf("checkpoint: bad run-state magic %q (not a run checkpoint, or unsupported version)", got)
	}
	rs := &RunState{}
	var methodLen uint16
	if err := binary.Read(br, binary.LittleEndian, &methodLen); err != nil {
		return nil, fmt.Errorf("checkpoint: run method length: %w", err)
	}
	if methodLen == 0 || int(methodLen) > maxNameLen {
		return nil, fmt.Errorf("checkpoint: invalid run method length %d", methodLen)
	}
	methodBuf := make([]byte, methodLen)
	if _, err := io.ReadFull(br, methodBuf); err != nil {
		return nil, fmt.Errorf("checkpoint: run method: %w", err)
	}
	rs.Method = string(methodBuf)
	if err := binary.Read(br, binary.LittleEndian, &rs.Seed); err != nil {
		return nil, fmt.Errorf("checkpoint: run seed: %w", err)
	}
	var nextTask, nextRound uint32
	if err := binary.Read(br, binary.LittleEndian, &nextTask); err != nil {
		return nil, fmt.Errorf("checkpoint: resume task: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &nextRound); err != nil {
		return nil, fmt.Errorf("checkpoint: resume round: %w", err)
	}
	if nextTask > maxTasks || nextRound > maxTasks {
		return nil, fmt.Errorf("checkpoint: invalid resume position task %d round %d", nextTask, nextRound)
	}
	rs.NextTask, rs.NextRound = int(nextTask), int(nextRound)
	var rows uint32
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return nil, fmt.Errorf("checkpoint: matrix rows: %w", err)
	}
	if rows > maxTasks {
		return nil, fmt.Errorf("checkpoint: matrix with %d rows exceeds %d", rows, maxTasks)
	}
	rs.Matrix = make([][]float64, rows)
	for i := range rs.Matrix {
		var cols uint32
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return nil, fmt.Errorf("checkpoint: matrix row %d: %w", i, err)
		}
		if cols > maxTasks {
			return nil, fmt.Errorf("checkpoint: matrix row %d with %d cells exceeds %d", i, cols, maxTasks)
		}
		row := make([]float64, cols)
		for j := range row {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return nil, fmt.Errorf("checkpoint: matrix cell (%d,%d): %w", i, j, err)
			}
			row[j] = math.Float64frombits(bits)
		}
		rs.Matrix[i] = row
	}
	hasPayload, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: payload flag: %w", err)
	}
	rs.HasPayload = hasPayload != 0
	var payloadLen uint32
	if err := binary.Read(br, binary.LittleEndian, &payloadLen); err != nil {
		return nil, fmt.Errorf("checkpoint: payload length: %w", err)
	}
	if payloadLen > maxPayload {
		return nil, fmt.Errorf("checkpoint: payload of %d bytes exceeds %d", payloadLen, maxPayload)
	}
	rs.Payload = make([]byte, payloadLen)
	if _, err := io.ReadFull(br, rs.Payload); err != nil {
		return nil, fmt.Errorf("checkpoint: payload: %w", err)
	}
	if rs.Global, err = Load(br); err != nil {
		return nil, err
	}
	return rs, nil
}

// SaveRunStateFile atomically writes a run snapshot to path: a coordinator
// killed mid-write leaves the previous snapshot intact, never a torn file.
func SaveRunStateFile(path string, rs *RunState) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".runckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	defer func() {
		if err != nil {
			_ = os.Remove(tmp.Name())
		}
	}()
	if err = SaveRunState(tmp, rs); err != nil {
		_ = tmp.Close()
		return err
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing temp file: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: installing %s: %w", path, err)
	}
	return nil
}

// LoadRunStateFile reads a run snapshot from path.
func LoadRunStateFile(path string) (*RunState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening %s: %w", path, err)
	}
	defer f.Close()
	return LoadRunState(f)
}
