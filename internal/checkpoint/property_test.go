package checkpoint

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"reffil/internal/tensor"
)

// Property: any randomly shaped state dict survives a Save/Load round trip
// exactly.
func TestQuickRoundTripArbitraryDicts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dict := make(map[string]*tensor.Tensor)
		n := 1 + r.Intn(6)
		for i := 0; i < n; i++ {
			rank := r.Intn(4)
			shape := make([]int, rank)
			for d := range shape {
				shape[d] = 1 + r.Intn(4)
			}
			dict[fmt.Sprintf("t%d", i)] = tensor.RandN(r, 1, shape...)
		}
		var buf bytes.Buffer
		if err := Save(&buf, dict); err != nil {
			return false
		}
		back, err := Load(&buf)
		if err != nil || len(back) != len(dict) {
			return false
		}
		for k, v := range dict {
			got, ok := back[k]
			if !ok || !got.SameShape(v) || !got.AllClose(v, 0) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: random byte corruption of a checkpoint never panics Load — it
// either errors or (for data-section flips) yields a loadable dict.
func TestQuickCorruptionNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := map[string]*tensor.Tensor{
		"w": tensor.RandN(rng, 1, 4, 3),
		"b": tensor.RandN(rng, 1, 3),
	}
	var buf bytes.Buffer
	if err := Save(&buf, base); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		corrupted := append([]byte(nil), raw...)
		flips := 1 + r.Intn(8)
		for i := 0; i < flips; i++ {
			pos := r.Intn(len(corrupted))
			corrupted[pos] ^= byte(1 << r.Intn(8))
		}
		_, _ = Load(bytes.NewReader(corrupted))
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
