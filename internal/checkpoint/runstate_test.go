package checkpoint

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func sampleRunState(rng *rand.Rand) *RunState {
	return &RunState{
		Method:    "reffil",
		Seed:      -7,
		NextTask:  1,
		NextRound: 2,
		// Unevaluated cells are NaN — the round trip must preserve them
		// (and every other bit pattern) exactly.
		Matrix: [][]float64{
			{0.5, math.NaN(), math.NaN()},
			{0.25, 0.75, math.NaN()},
			{},
		},
		Global:     sampleDict(rng),
		Payload:    []byte{0x00, 0xff, 0x10, 0x20},
		HasPayload: true,
	}
}

// sameFloat compares bit patterns, so NaN == NaN and 0 != -0.
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestRunStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rs := sampleRunState(rng)
	var buf bytes.Buffer
	if err := SaveRunState(&buf, rs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRunState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != rs.Method || got.Seed != rs.Seed {
		t.Fatalf("header round trip: got (%s,%d), want (%s,%d)", got.Method, got.Seed, rs.Method, rs.Seed)
	}
	if got.NextTask != rs.NextTask || got.NextRound != rs.NextRound {
		t.Fatalf("position round trip: got (%d,%d), want (%d,%d)", got.NextTask, got.NextRound, rs.NextTask, rs.NextRound)
	}
	if len(got.Matrix) != len(rs.Matrix) {
		t.Fatalf("matrix rows = %d, want %d", len(got.Matrix), len(rs.Matrix))
	}
	for i, row := range rs.Matrix {
		if len(got.Matrix[i]) != len(row) {
			t.Fatalf("matrix row %d has %d cells, want %d", i, len(got.Matrix[i]), len(row))
		}
		for j, v := range row {
			if !sameFloat(got.Matrix[i][j], v) {
				t.Fatalf("matrix cell (%d,%d) = %v, want %v", i, j, got.Matrix[i][j], v)
			}
		}
	}
	if !got.HasPayload || !bytes.Equal(got.Payload, rs.Payload) {
		t.Fatalf("payload round trip: got (%v,%q), want (true,%q)", got.HasPayload, got.Payload, rs.Payload)
	}
	if len(got.Global) != len(rs.Global) {
		t.Fatalf("global dict has %d keys, want %d", len(got.Global), len(rs.Global))
	}
	for name, want := range rs.Global {
		gotT, ok := got.Global[name]
		if !ok {
			t.Fatalf("global dict lost key %q", name)
		}
		a, b := want.Data(), gotT.Data()
		if len(a) != len(b) {
			t.Fatalf("tensor %q has %d elements, want %d", name, len(b), len(a))
		}
		for i := range a {
			if !sameFloat(a[i], b[i]) {
				t.Fatalf("tensor %q element %d = %v, want %v", name, i, b[i], a[i])
			}
		}
	}
}

func TestRunStateFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rs := sampleRunState(rng)
	rs.HasPayload, rs.Payload = false, nil
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := SaveRunStateFile(path, rs); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place: the atomic temp-and-rename install must replace
	// the previous snapshot, not append or corrupt.
	rs.NextRound = 0
	rs.NextTask = 2
	if err := SaveRunStateFile(path, rs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRunStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextTask != 2 || got.NextRound != 0 {
		t.Fatalf("loaded position (%d,%d), want the overwritten (2,0)", got.NextTask, got.NextRound)
	}
	if got.HasPayload || len(got.Payload) != 0 {
		t.Fatalf("payloadless snapshot round-tripped as (%v,%q)", got.HasPayload, got.Payload)
	}
	// No temp litter left behind by the two installs.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir holds %d entries, want just the snapshot", len(entries))
	}
}

func TestRunStateRejectsBadMagic(t *testing.T) {
	if _, err := LoadRunState(bytes.NewReader([]byte("NOTARUN0 plus junk"))); err == nil {
		t.Fatal("bad run-state magic must error")
	}
	// A plain dict checkpoint is not a run state either.
	var buf bytes.Buffer
	if err := Save(&buf, sampleDict(rand.New(rand.NewSource(13)))); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRunState(&buf); err == nil {
		t.Fatal("dict checkpoint must not load as a run state")
	}
}

func TestRunStateRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var buf bytes.Buffer
	if err := SaveRunState(&buf, sampleRunState(rng)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 9, 20, len(full) / 2, len(full) - 1} {
		if _, err := LoadRunState(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes must error", cut)
		}
	}
}

func TestRunStateRejectsHostileSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	rs := sampleRunState(rng)
	rs.NextTask = maxTasks + 1
	if err := SaveRunState(&bytes.Buffer{}, rs); err == nil {
		t.Fatal("out-of-range resume task must refuse to serialize")
	}
	rs.NextTask = 0
	rs.Payload = make([]byte, maxPayload+1)
	if err := SaveRunState(&bytes.Buffer{}, rs); err == nil {
		t.Fatal("oversized payload must refuse to serialize")
	}
}
