package checkpoint

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"reffil/internal/model"
	"reffil/internal/tensor"
)

func sampleDict(rng *rand.Rand) map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{
		"layer.w":  tensor.RandN(rng, 1, 3, 4),
		"layer.b":  tensor.RandN(rng, 1, 4),
		"scalarly": tensor.Scalar(math.Pi),
		"special":  tensor.FromSlice([]float64{0, -0, math.MaxFloat64, -math.SmallestNonzeroFloat64}, 4),
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dict := sampleDict(rng)
	var buf bytes.Buffer
	if err := Save(&buf, dict); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(dict) {
		t.Fatalf("entries %d, want %d", len(back), len(dict))
	}
	for k, v := range dict {
		got, ok := back[k]
		if !ok {
			t.Fatalf("missing entry %q", k)
		}
		if !got.SameShape(v) {
			t.Fatalf("entry %q shape %v, want %v", k, got.Shape(), v.Shape())
		}
		if !got.AllClose(v, 0) {
			t.Fatalf("entry %q data corrupted", k)
		}
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dict := sampleDict(rng)
	var a, b bytes.Buffer
	if err := Save(&a, dict); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, dict); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same dict must serialize identically")
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOTACKPT plus junk"))); err == nil {
		t.Fatal("bad magic must error")
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var buf bytes.Buffer
	if err := Save(&buf, sampleDict(rng)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly, never panic.
	for _, cut := range []int{4, 8, 12, 20, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes must error", cut)
		}
	}
}

func TestLoadRejectsHostileHeader(t *testing.T) {
	// Craft a header claiming a gigantic tensor; Load must refuse before
	// allocating.
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{1, 0, 0, 0}) // count = 1
	buf.Write([]byte{1, 0})       // name length 1
	buf.WriteByte('x')            // name
	buf.WriteByte(2)              // rank 2
	for i := 0; i < 2; i++ {      // dims: 2^40 each
		buf.Write([]byte{0, 0, 0, 0, 0, 1, 0, 0})
	}
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("hostile dims must be rejected")
	}
}

func TestSaveFileAtomicAndLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	rng := rand.New(rand.NewSource(4))
	dict := sampleDict(rng)
	if err := SaveFile(path, dict); err != nil {
		t.Fatal(err)
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the checkpoint", len(entries))
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back["layer.w"].AllClose(dict["layer.w"], 0) {
		t.Fatal("file round trip corrupted data")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestSaveLoadModuleRestoresPredictions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src, err := model.New(model.DefaultConfig(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "backbone.ckpt")
	if err := SaveModule(path, src); err != nil {
		t.Fatal(err)
	}
	dst, err := model.New(model.DefaultConfig(5), rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadModule(path, dst); err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(rng, 1, 2, 3, 16, 16)
	p1, err := src.Predict(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := dst.Predict(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("checkpoint round trip changed predictions")
		}
	}
}

func TestLoadModuleStructureMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	src, err := model.New(model.DefaultConfig(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "backbone.ckpt")
	if err := SaveModule(path, src); err != nil {
		t.Fatal(err)
	}
	// A backbone with a different class count must refuse the checkpoint.
	other, err := model.New(model.DefaultConfig(7), rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadModule(path, other); err == nil {
		t.Fatal("structure mismatch must error")
	}
}

func TestEmptyDictRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("empty dict round trip has %d entries", len(back))
	}
}

func TestDuplicateEntryRejected(t *testing.T) {
	// Hand-craft a stream with a duplicated name.
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{2, 0, 0, 0}) // count = 2
	for i := 0; i < 2; i++ {
		buf.Write([]byte{1, 0}) // name len 1
		buf.WriteByte('x')
		buf.WriteByte(0) // rank 0 (scalar)
		buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	}
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("duplicate entries must error")
	}
}
