// Package checkpoint persists model state dicts to disk in a compact,
// versioned binary format, so long federated runs (the paper-scale preset
// trains for hours on CPU) can be stopped, resumed and shipped between
// machines. Files are written atomically (temp file + rename).
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"reffil/internal/nn"
	"reffil/internal/tensor"
)

// magic identifies checkpoint files; the trailing digit is the format
// version.
var magic = [8]byte{'R', 'F', 'L', 'C', 'K', 'P', 'T', '1'}

const (
	// maxNameLen bounds serialized tensor names.
	maxNameLen = 4096
	// maxDims bounds tensor rank.
	maxDims = 16
	// maxElems bounds a single tensor's element count (4M elems = 32 MiB),
	// protecting Load against corrupt or hostile headers: a flipped dim
	// byte must never trigger a multi-gigabyte allocation.
	maxElems = 1 << 22
)

// Save writes a state dict to w. Entries are sorted by name so the output
// is deterministic for identical state.
func Save(w io.Writer, dict map[string]*tensor.Tensor) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("checkpoint: writing header: %w", err)
	}
	names := make([]string, 0, len(dict))
	for name := range dict {
		names = append(names, name)
	}
	sort.Strings(names)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(names))); err != nil {
		return fmt.Errorf("checkpoint: writing count: %w", err)
	}
	for _, name := range names {
		if len(name) == 0 || len(name) > maxNameLen {
			return fmt.Errorf("checkpoint: invalid tensor name length %d", len(name))
		}
		t := dict[name]
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		shape := t.Shape()
		if len(shape) > maxDims {
			return fmt.Errorf("checkpoint: tensor %q has rank %d > %d", name, len(shape), maxDims)
		}
		if err := bw.WriteByte(byte(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, int64(d)); err != nil {
				return err
			}
		}
		for _, v := range t.Data() {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("checkpoint: flushing: %w", err)
	}
	return nil
}

// Load reads a state dict from r, validating the header and every size
// field before allocating.
func Load(r io.Reader) (map[string]*tensor.Tensor, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading header: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q (not a checkpoint, or unsupported version)", got)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("checkpoint: reading count: %w", err)
	}
	// Never pre-size from an untrusted count: a corrupted header must not
	// translate into a giant allocation. Entries grow the map as they are
	// actually parsed.
	hint := int(count)
	if hint > 1024 {
		hint = 1024
	}
	dict := make(map[string]*tensor.Tensor, hint)
	for i := uint32(0); i < count; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("checkpoint: entry %d name length: %w", i, err)
		}
		if nameLen == 0 || int(nameLen) > maxNameLen {
			return nil, fmt.Errorf("checkpoint: entry %d has invalid name length %d", i, nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, fmt.Errorf("checkpoint: entry %d name: %w", i, err)
		}
		name := string(nameBuf)
		if _, dup := dict[name]; dup {
			return nil, fmt.Errorf("checkpoint: duplicate entry %q", name)
		}
		ndim, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: entry %q rank: %w", name, err)
		}
		if int(ndim) > maxDims {
			return nil, fmt.Errorf("checkpoint: entry %q has rank %d > %d", name, ndim, maxDims)
		}
		shape := make([]int, ndim)
		elems := 1
		for d := range shape {
			var dim int64
			if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
				return nil, fmt.Errorf("checkpoint: entry %q dim %d: %w", name, d, err)
			}
			if dim < 0 || dim > maxElems {
				return nil, fmt.Errorf("checkpoint: entry %q has invalid dim %d", name, dim)
			}
			shape[d] = int(dim)
			elems *= int(dim)
			if elems > maxElems {
				return nil, fmt.Errorf("checkpoint: entry %q exceeds element budget", name)
			}
		}
		t := tensor.New(shape...)
		buf := t.Data()
		for j := range buf {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return nil, fmt.Errorf("checkpoint: entry %q data: %w", name, err)
			}
			buf[j] = math.Float64frombits(bits)
		}
		dict[name] = t
	}
	return dict, nil
}

// SaveFile atomically writes a state dict to path.
func SaveFile(path string, dict map[string]*tensor.Tensor) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp file: %w", err)
	}
	defer func() {
		if err != nil {
			_ = os.Remove(tmp.Name())
		}
	}()
	if err = Save(tmp, dict); err != nil {
		_ = tmp.Close()
		return err
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing temp file: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: installing %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a state dict from path.
func LoadFile(path string) (map[string]*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}

// SaveModule checkpoints a module's full state (parameters + buffers).
func SaveModule(path string, m nn.Module) error {
	return SaveFile(path, nn.StateDict(m))
}

// LoadModule restores a module's state from a checkpoint; the module's
// structure must match the file exactly.
func LoadModule(path string, m nn.Module) error {
	dict, err := LoadFile(path)
	if err != nil {
		return err
	}
	return nn.LoadStateDict(m, dict)
}
